package gossip

import (
	"testing"

	"repro/internal/gmproto"
	"repro/internal/routing"
	"repro/internal/sim"
)

// testConfig shrinks the agent timers so failure detection plays out in
// simulated milliseconds.
func testConfig() Config {
	return Config{
		ProbeInterval:     5 * sim.Millisecond,
		ProbeTimeout:      500 * sim.Microsecond,
		IndirectProbes:    2,
		SuspicionTimeout:  100 * sim.Millisecond,
		ConfirmQuorum:     2,
		DeadProbeInterval: 50 * sim.Millisecond,
		MaxDeltas:         8,
		RetransmitMult:    3,
	}
}

// gossipNet is an in-memory datagram fabric for a cluster of agents: it
// resolves each sent route against the sender's spliced route set and
// delivers with a small latency, subject to scripted faults.
type gossipNet struct {
	eng    *sim.Engine
	agents map[gmproto.NodeID]*Agent
	// byRoute[src][string(route)] is the destination that route reaches.
	byRoute map[gmproto.NodeID]map[string]gmproto.NodeID
	// down nodes neither send nor receive.
	down map[gmproto.NodeID]bool
	// cut[{a,b}] severs the a->b direction only.
	cut map[[2]gmproto.NodeID]bool

	deadEvents  map[gmproto.NodeID][]gmproto.NodeID // observer -> peers reported dead
	aliveEvents map[gmproto.NodeID][]gmproto.NodeID
}

func newGossipNet(t *testing.T, n int, cfg Config) *gossipNet {
	t.Helper()
	net := &gossipNet{
		eng:         sim.NewEngine(1),
		agents:      make(map[gmproto.NodeID]*Agent),
		byRoute:     make(map[gmproto.NodeID]map[string]gmproto.NodeID),
		down:        make(map[gmproto.NodeID]bool),
		cut:         make(map[[2]gmproto.NodeID]bool),
		deadEvents:  make(map[gmproto.NodeID][]gmproto.NodeID),
		aliveEvents: make(map[gmproto.NodeID][]gmproto.NodeID),
	}
	// Star topology route database anchored at node 1: distinct one-hop
	// routes so every spliced src->dst route is unique per sender.
	members := make([]gmproto.NodeID, 0, n)
	anchor := make(map[gmproto.NodeID][]byte)
	for i := 1; i <= n; i++ {
		id := gmproto.NodeID(i)
		members = append(members, id)
		if i > 1 {
			anchor[id] = []byte{byte(10 * i)}
		}
	}
	for _, src := range members {
		net.byRoute[src] = make(map[string]gmproto.NodeID)
		for _, dst := range members {
			if dst == src {
				continue
			}
			r, err := routing.SpliceRoute(anchor[src], anchor[dst])
			if err != nil {
				t.Fatalf("splice %d->%d: %v", src, dst, err)
			}
			net.byRoute[src][string(r)] = dst
		}
	}
	for _, id := range members {
		id := id
		a := New(net.eng, cfg, 0x9E3779B97F4A7C15^uint64(id))
		a.SeedView(id, members, anchor)
		a.SetTransport(func(route, payload []byte) { net.deliver(id, route, payload) })
		a.SetHooks(Hooks{
			Dead: func(peer gmproto.NodeID, routes map[gmproto.NodeID][]byte) {
				net.deadEvents[id] = append(net.deadEvents[id], peer)
				if _, ok := routes[peer]; ok {
					t.Errorf("node %d: Dead(%d) route table still contains the dead peer", id, peer)
				}
			},
			Alive: func(peer gmproto.NodeID, routes map[gmproto.NodeID][]byte) {
				net.aliveEvents[id] = append(net.aliveEvents[id], peer)
				if _, ok := routes[peer]; !ok {
					t.Errorf("node %d: Alive(%d) route table missing the readmitted peer", id, peer)
				}
			},
		})
		net.agents[id] = a
	}
	return net
}

func (n *gossipNet) start() {
	for _, a := range n.agents {
		a.Start()
	}
}

func (n *gossipNet) deliver(src gmproto.NodeID, route, payload []byte) {
	if n.down[src] {
		return
	}
	dst, ok := n.byRoute[src][string(route)]
	if !ok {
		return
	}
	buf := append([]byte(nil), payload...)
	n.eng.After(10*sim.Microsecond, func() {
		if n.down[dst] || n.cut[[2]gmproto.NodeID{src, dst}] {
			return
		}
		n.agents[dst].HandlePacket(buf)
	})
}

// sever cuts both directions between a and b.
func (n *gossipNet) sever(a, b gmproto.NodeID) {
	n.cut[[2]gmproto.NodeID{a, b}] = true
	n.cut[[2]gmproto.NodeID{b, a}] = true
}

func TestGossipSteadyStateStaysAlive(t *testing.T) {
	net := newGossipNet(t, 4, testConfig())
	net.start()
	net.eng.RunUntil(2 * sim.Second)

	for id, a := range net.agents {
		st := a.Stats()
		if st.ProbesSent == 0 || st.AcksSent == 0 {
			t.Fatalf("node %d idle: %+v", id, st)
		}
		if st.DeadDeclared != 0 {
			t.Fatalf("node %d declared deaths in a healthy cluster: %+v", id, st)
		}
		for peer, s := range a.Members() {
			if s != StateAlive {
				t.Fatalf("node %d sees %d as %v in a healthy cluster", id, peer, s)
			}
		}
	}
}

func TestGossipDeadNodeDeclaredByQuorum(t *testing.T) {
	net := newGossipNet(t, 4, testConfig())
	net.start()
	net.eng.RunUntil(100 * sim.Millisecond)
	net.down[4] = true
	net.eng.RunUntil(2 * sim.Second)

	for _, id := range []gmproto.NodeID{1, 2, 3} {
		a := net.agents[id]
		view := a.Members()
		if view[4] != StateDead {
			t.Fatalf("node %d sees dead node 4 as %v", id, view[4])
		}
		for _, peer := range []gmproto.NodeID{1, 2, 3} {
			if peer != id && view[peer] != StateAlive {
				t.Fatalf("node %d sees live node %d as %v", id, peer, view[peer])
			}
		}
		if len(net.deadEvents[id]) != 1 || net.deadEvents[id][0] != 4 {
			t.Fatalf("node %d Dead hook calls = %v, want [4]", id, net.deadEvents[id])
		}
	}
}

func TestGossipIndirectProbesSaveOneBadPath(t *testing.T) {
	net := newGossipNet(t, 4, testConfig())
	net.start()
	net.eng.RunUntil(100 * sim.Millisecond)
	// Only the 1<->2 path dies; 2 is reachable through 3 and 4.
	net.sever(1, 2)
	net.eng.RunUntil(3 * sim.Second)

	for id, a := range net.agents {
		if n := len(net.deadEvents[id]); n != 0 {
			t.Fatalf("node %d declared deaths %v over a single bad path", id, net.deadEvents[id])
		}
		if a.Members()[2] == StateDead || a.Members()[1] == StateDead {
			t.Fatalf("node %d marked an endpoint of the cut path dead", id)
		}
	}
	if net.agents[1].Stats().PingReqsSent == 0 {
		t.Fatal("node 1 never escalated to indirect probes across the cut path")
	}
}

func TestGossipTransientOutageRefutedNotExpelled(t *testing.T) {
	cfg := testConfig()
	net := newGossipNet(t, 4, cfg)
	net.start()
	net.eng.RunUntil(100 * sim.Millisecond)
	// Outage much shorter than the suspicion timeout: suspicion must form
	// and then be refuted, never reaching a dead verdict.
	net.down[2] = true
	net.eng.RunUntil(130 * sim.Millisecond)
	net.down[2] = false
	net.eng.RunUntil(2 * sim.Second)

	for id, a := range net.agents {
		for peer, s := range a.Members() {
			if s != StateAlive {
				t.Fatalf("node %d still sees %d as %v after recovery", id, peer, s)
			}
		}
		if len(net.deadEvents[id]) != 0 {
			t.Fatalf("node %d expelled %v during a transient outage", id, net.deadEvents[id])
		}
	}
	var suspicions uint64
	for _, a := range net.agents {
		suspicions += a.Stats().Suspicions
	}
	if suspicions == 0 {
		t.Fatal("a 30ms blackout raised no suspicion at all (detector asleep?)")
	}
}

func TestGossipDeadNodeReadmitted(t *testing.T) {
	net := newGossipNet(t, 4, testConfig())
	net.start()
	net.eng.RunUntil(100 * sim.Millisecond)
	net.down[4] = true
	net.eng.RunUntil(1 * sim.Second)
	for _, id := range []gmproto.NodeID{1, 2, 3} {
		if net.agents[id].Members()[4] != StateDead {
			t.Fatalf("node %d never declared 4 dead before revival", id)
		}
	}

	// Revival: node 4's own probes meet acks carrying its death verdict, it
	// refutes with a bumped incarnation, and everyone readmits.
	net.down[4] = false
	net.eng.RunUntil(4 * sim.Second)

	for _, id := range []gmproto.NodeID{1, 2, 3} {
		a := net.agents[id]
		if a.Members()[4] != StateAlive {
			t.Fatalf("node %d did not readmit 4: %v", id, a.Members()[4])
		}
		if got := net.aliveEvents[id]; len(got) != 1 || got[0] != 4 {
			t.Fatalf("node %d Alive hook calls = %v, want [4]", id, got)
		}
	}
	if net.agents[4].Stats().Refutations == 0 {
		t.Fatal("node 4 never refuted its own death")
	}
	if net.agents[4].Incarnation() == 0 {
		t.Fatal("node 4's incarnation never advanced")
	}
}

func TestGossipIsolatedNodeCannotExpelAnyone(t *testing.T) {
	net := newGossipNet(t, 4, testConfig())
	net.start()
	net.eng.RunUntil(100 * sim.Millisecond)
	// Node 1 is fully isolated: it suspects everyone, but with no second
	// endorser its quorum (2) is never met — the majority side expels node
	// 1, the minority side expels nobody.
	net.down[1] = true
	net.eng.RunUntil(3 * sim.Second)

	one := net.agents[1]
	if one.Stats().DeadDeclared != 0 || len(net.deadEvents[1]) != 0 {
		t.Fatalf("isolated node expelled peers: stats=%+v events=%v",
			one.Stats(), net.deadEvents[1])
	}
	for peer, s := range one.Members() {
		if s != StateSuspect {
			t.Fatalf("isolated node sees %d as %v, want suspect (campaigning)", peer, s)
		}
	}
	for _, id := range []gmproto.NodeID{2, 3, 4} {
		if net.agents[id].Members()[1] != StateDead {
			t.Fatalf("majority node %d did not expel the isolated node", id)
		}
	}
}

func TestGossipPathSuspicionTriggersTargetedProbe(t *testing.T) {
	net := newGossipNet(t, 4, testConfig())
	net.start()
	net.eng.RunUntil(50 * sim.Millisecond)

	before := net.agents[1].Stats().ProbesSent
	net.agents[1].SuspectPath(3)
	if got := net.agents[1].Stats(); got.PathSuspicions != 1 {
		t.Fatalf("PathSuspicions = %d, want 1", got.PathSuspicions)
	}
	if net.agents[1].Stats().ProbesSent != before+1 {
		t.Fatal("path suspicion did not launch an immediate out-of-round probe")
	}
	// The path is actually healthy: the probe acks, nothing escalates.
	net.eng.RunUntil(1 * sim.Second)
	for id, a := range net.agents {
		if a.Stats().Suspicions != 0 || a.Stats().DeadDeclared != 0 {
			t.Fatalf("node %d escalated a healthy-path suspicion: %+v", id, a.Stats())
		}
	}
}

// TestGossipDeterministicReplay runs the same faulted cluster twice and
// demands identical stats and final views — the plane's determinism
// contract, independent of any map iteration order inside the agent.
func TestGossipDeterministicReplay(t *testing.T) {
	run := func() string {
		net := newGossipNet(t, 4, testConfig())
		net.start()
		net.eng.RunUntil(100 * sim.Millisecond)
		net.down[3] = true
		net.eng.RunUntil(1 * sim.Second)
		net.down[3] = false
		net.eng.RunUntil(3 * sim.Second)
		out := ""
		for i := 1; i <= 4; i++ {
			a := net.agents[gmproto.NodeID(i)]
			st := a.Stats()
			out += st.String()
			for j := 1; j <= 4; j++ {
				if s, ok := a.Members()[gmproto.NodeID(j)]; ok {
					out += s.String()
				}
			}
		}
		return out
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("replay diverged:\n%s\nvs\n%s", a, b)
	}
}
