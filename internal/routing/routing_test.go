package routing

import (
	"bytes"
	"testing"

	"repro/internal/gmproto"
)

func TestAssignIDsFreshAndPrior(t *testing.T) {
	// Fresh assignment: sorted UIDs get 1..n.
	ids := AssignIDs([]uint64{30, 10, 20}, nil)
	want := map[uint64]gmproto.NodeID{10: 1, 20: 2, 30: 3}
	for uid, id := range want {
		if ids[uid] != id {
			t.Fatalf("fresh AssignIDs[%d] = %d, want %d", uid, ids[uid], id)
		}
	}

	// Survivors keep their prior identity; the newcomer fills the gap.
	prior := map[uint64]gmproto.NodeID{10: 3, 30: 1}
	ids = AssignIDs([]uint64{10, 30, 40}, prior)
	if ids[10] != 3 || ids[30] != 1 {
		t.Fatalf("prior identities not preserved: %v", ids)
	}
	if ids[40] != 2 {
		t.Fatalf("newcomer should fill smallest unused ID 2, got %d", ids[40])
	}
}

func TestAssignIDsDuplicatePrior(t *testing.T) {
	// Two UIDs claiming the same prior ID: first in UID order wins, the
	// other is treated as a newcomer.
	prior := map[uint64]gmproto.NodeID{10: 2, 20: 2}
	ids := AssignIDs([]uint64{20, 10}, prior)
	if ids[10] != 2 {
		t.Fatalf("uid 10 should keep prior id 2, got %d", ids[10])
	}
	if ids[20] != 1 {
		t.Fatalf("uid 20 should fall back to smallest unused id 1, got %d", ids[20])
	}
}

func TestSpliceRouteAnchorCases(t *testing.T) {
	// X is the anchor: route is simply A->Y.
	got, err := SpliceRoute(nil, []byte{1, 2})
	if err != nil || !bytes.Equal(got, []byte{1, 2}) {
		t.Fatalf("anchor->Y splice = %v, %v", got, err)
	}
	// Y is the anchor: route is reverse(A->X).
	got, err = SpliceRoute([]byte{1, 2}, nil)
	if err != nil || !bytes.Equal(got, []byte{0xFE, 0xFF}) {
		t.Fatalf("X->anchor splice = %v, %v", got, err)
	}
	if _, err := SpliceRoute(nil, nil); err == nil {
		t.Fatal("splice of two empty routes should fail")
	}
}

func TestSpliceRouteJunction(t *testing.T) {
	// Same first switch, different exit ports: one junction delta.
	got, err := SpliceRoute([]byte{2}, []byte{5})
	if err != nil || !bytes.Equal(got, []byte{3}) {
		t.Fatalf("single-switch splice = %v, %v", got, err)
	}
	// Shared prefix of one hop: backtrack one switch, turn, follow Y.
	got, err = SpliceRoute([]byte{1, 2}, []byte{1, 4})
	if err != nil || !bytes.Equal(got, []byte{2}) {
		t.Fatalf("shared-prefix splice = %v, %v", got, err)
	}
}

func TestTablesMatchTableFor(t *testing.T) {
	anchor := map[gmproto.NodeID][]byte{
		2: {1},
		3: {2},
		4: {3},
	}
	members := []gmproto.NodeID{1, 2, 3, 4}
	all := Tables(members, anchor)
	if len(all) != 4 {
		t.Fatalf("Tables returned %d tables, want 4", len(all))
	}
	for _, x := range members {
		one := TableFor(x, members, anchor)
		if len(one) != len(members)-1 {
			t.Fatalf("node %d table has %d entries, want %d", x, len(one), len(members)-1)
		}
		for y, r := range one {
			if !bytes.Equal(all[x][y], r) {
				t.Fatalf("Tables/TableFor disagree for %d->%d: %v vs %v", x, y, all[x][y], r)
			}
		}
	}
	// Spot-check symmetry through the anchor's switch: 2->3 turns at the
	// shared crossbar with delta dy-dx.
	if !bytes.Equal(all[2][3], []byte{1}) {
		t.Fatalf("2->3 route = %v, want [1]", all[2][3])
	}
	if !bytes.Equal(all[3][2], []byte{0xFF}) {
		t.Fatalf("3->2 route = %v, want [-1]", all[3][2])
	}
}
