// Package routing is the route-computation core shared by the two control
// planes: the central GM mapper (internal/mapper), which computes every
// node's table on the mapping node and distributes it in-band, and the
// gossip membership plane (internal/gossip), where each node computes its
// own table locally from a replicated anchor-relative route database.
//
// Everything here is pure computation over delta routes — no engine, no
// packets — so both planes produce byte-identical tables from the same
// inputs: identity assignment over burned-in UIDs, and all-pairs source
// routes spliced at the anchor's first switch from the anchor's own routes.
package routing

import (
	"fmt"
	"sort"

	"repro/internal/gmproto"
)

// AssignIDs deterministically assigns a NodeID to every UID: interfaces
// present in prior keep their identity (streams are keyed by NodeID, so an
// identity that moved between nodes across a remap would silently
// cross-wire sequence spaces); newcomers fill the smallest unused IDs from
// 1 up, in UID order. The input slice is not modified.
func AssignIDs(uids []uint64, prior map[uint64]gmproto.NodeID) map[uint64]gmproto.NodeID {
	sorted := append([]uint64(nil), uids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	ids := make(map[uint64]gmproto.NodeID, len(sorted))
	used := make(map[gmproto.NodeID]bool, len(sorted))
	for _, uid := range sorted {
		if id, ok := prior[uid]; ok && id != 0 && !used[id] {
			ids[uid] = id
			used[id] = true
		}
	}
	next := gmproto.NodeID(1)
	for _, uid := range sorted {
		if _, ok := ids[uid]; ok {
			continue
		}
		for used[next] {
			next++
		}
		ids[uid] = next
		used[next] = true
	}
	return ids
}

// SpliceRoute builds a route X->Y out of the anchor's routes A->X and A->Y.
// The two anchor routes share switches up to their first divergence; the
// spliced route backtracks from X to the divergence switch, turns, and
// follows the Y path. At the divergence switch the X-path packet arrives on
// the port it would have exited toward X (input-relative deltas make that
// in+dx), while the Y path needs output in+dy, so the junction delta is
// dy-dx; every later Y-path delta applies unchanged because the packet then
// enters each switch on exactly the port an A-launched packet would.
//
// An empty toX means X is the anchor itself (route is just A->Y); an empty
// toY means Y is the anchor (route is just reverse(A->X)).
func SpliceRoute(toX, toY []byte) ([]byte, error) {
	if len(toX) == 0 {
		if len(toY) == 0 {
			return nil, fmt.Errorf("routing: splice of empty routes")
		}
		return append([]byte(nil), toY...), nil
	}
	if len(toY) == 0 {
		return gmproto.ReverseRoute(toX), nil
	}
	// Longest common prefix, capped so the junction hop exists in both.
	maxK := min(len(toX), len(toY)) - 1
	k := 0
	for k < maxK && toX[k] == toY[k] {
		k++
	}
	rev := gmproto.ReverseRoute(toX[k:])
	out := make([]byte, 0, len(rev)+len(toY)-k)
	out = append(out, rev[:len(rev)-1]...)
	out = append(out, byte(int8(toY[k])-int8(toX[k])))
	out = append(out, toY[k+1:]...)
	return out, nil
}

// TableFor computes one node's route table: a route from self to every
// member of members except itself, spliced from the anchor-relative
// database (anchor[id] is the anchor's route to id; absent/nil for the
// anchor node itself). Pairs the database cannot connect are omitted.
func TableFor(self gmproto.NodeID, members []gmproto.NodeID, anchor map[gmproto.NodeID][]byte) map[gmproto.NodeID][]byte {
	tbl := make(map[gmproto.NodeID][]byte, len(members))
	for _, y := range members {
		if y == self {
			continue
		}
		r, err := SpliceRoute(anchor[self], anchor[y])
		if err != nil {
			continue
		}
		tbl[y] = r
	}
	return tbl
}

// Tables computes the all-pairs route tables for members from the
// anchor-relative database: the central mapper's bulk form of TableFor.
func Tables(members []gmproto.NodeID, anchor map[gmproto.NodeID][]byte) map[gmproto.NodeID]map[gmproto.NodeID][]byte {
	routes := make(map[gmproto.NodeID]map[gmproto.NodeID][]byte, len(members))
	for _, x := range members {
		routes[x] = TableFor(x, members, anchor)
	}
	return routes
}
