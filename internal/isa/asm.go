package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Program is the output of the assembler: an image to load at Origin, plus
// the symbol table so harnesses can locate routines (the fault campaign
// flips bits only inside the send_chunk section, exactly as the paper did).
type Program struct {
	Origin  uint32
	Image   []byte
	Symbols map[string]uint32
}

// SymbolRange returns the [start, end) byte range between two labels, which
// by convention bracket a section (e.g. "send_chunk" .. "send_chunk_end").
func (p *Program) SymbolRange(start, end string) (lo, hi uint32, err error) {
	lo, ok := p.Symbols[start]
	if !ok {
		return 0, 0, fmt.Errorf("isa: unknown symbol %q", start)
	}
	hi, ok = p.Symbols[end]
	if !ok {
		return 0, 0, fmt.Errorf("isa: unknown symbol %q", end)
	}
	if hi < lo {
		return 0, 0, fmt.Errorf("isa: symbol range %q..%q reversed", start, end)
	}
	return lo, hi, nil
}

type asmError struct {
	line int
	msg  string
}

func (e *asmError) Error() string { return fmt.Sprintf("isa: line %d: %s", e.line, e.msg) }

type item struct {
	line  int
	addr  uint32
	kind  byte // 'i' instruction, 'w' word literal, 's' space
	op    string
	args  []string
	value uint32 // for .word / .space
}

var regAliases = map[string]int{
	"zero": 0, "ra": 31, "sp": 30, "fp": 29, "gp": 28,
}

func parseReg(s string) (int, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if n, ok := regAliases[s]; ok {
		return n, nil
	}
	if strings.HasPrefix(s, "r") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < 32 {
			return n, nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func parseImm(s string, symbols map[string]uint32) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("empty immediate")
	}
	neg := false
	if s[0] == '-' {
		neg = true
		s = s[1:]
	}
	var v uint64
	var err error
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err = strconv.ParseUint(s[2:], 16, 32)
	} else if s[0] >= '0' && s[0] <= '9' {
		v, err = strconv.ParseUint(s, 10, 32)
	} else {
		// Symbol reference, with optional %hi/%lo selectors.
		switch {
		case strings.HasPrefix(s, "%hi(") && strings.HasSuffix(s, ")"):
			a, ok := symbols[s[4:len(s)-1]]
			if !ok {
				return 0, fmt.Errorf("unknown symbol in %q", s)
			}
			return int64(a >> 16), nil
		case strings.HasPrefix(s, "%lo(") && strings.HasSuffix(s, ")"):
			a, ok := symbols[s[4:len(s)-1]]
			if !ok {
				return 0, fmt.Errorf("unknown symbol in %q", s)
			}
			return int64(a & 0xffff), nil
		default:
			a, ok := symbols[s]
			if !ok {
				return 0, fmt.Errorf("unknown symbol %q", s)
			}
			return int64(a), nil
		}
	}
	if err != nil {
		return 0, err
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

// splitArgs splits "r1, 8(r2)" into ["r1", "8(r2)"].
func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

// parseMem parses "imm(rN)" operands.
func parseMem(s string, symbols map[string]uint32) (base int, off int64, err error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	offStr := strings.TrimSpace(s[:open])
	if offStr == "" {
		offStr = "0"
	}
	off, err = parseImm(offStr, symbols)
	if err != nil {
		return 0, 0, err
	}
	base, err = parseReg(s[open+1 : len(s)-1])
	return base, off, err
}

func stripComment(line string) string {
	for _, c := range []byte{';', '#'} {
		if i := strings.IndexByte(line, c); i >= 0 {
			line = line[:i]
		}
	}
	return strings.TrimSpace(line)
}

// instrSize reports how many words an (possibly pseudo) instruction expands
// to; used by pass one to lay out addresses.
func instrSize(op string) uint32 {
	switch op {
	case "li", "la":
		return 2 // lui+ori
	default:
		return 1
	}
}

// Assemble translates source into a Program. The source starts at origin
// (also the machine's PC after reset, conventionally past the reset vector).
func Assemble(src string, origin uint32) (*Program, error) {
	lines := strings.Split(src, "\n")
	symbols := make(map[string]uint32)
	var items []item
	pc := origin

	// Pass 1: addresses and symbols.
	for ln, raw := range lines {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		for {
			colon := strings.IndexByte(line, ':')
			if colon < 0 {
				break
			}
			label := strings.TrimSpace(line[:colon])
			if label == "" || strings.ContainsAny(label, " \t") {
				return nil, &asmError{ln + 1, fmt.Sprintf("bad label %q", label)}
			}
			if _, dup := symbols[label]; dup {
				return nil, &asmError{ln + 1, fmt.Sprintf("duplicate label %q", label)}
			}
			symbols[label] = pc
			line = strings.TrimSpace(line[colon+1:])
		}
		if line == "" {
			continue
		}
		fields := strings.SplitN(line, " ", 2)
		op := strings.ToLower(fields[0])
		rest := ""
		if len(fields) == 2 {
			rest = fields[1]
		}
		switch op {
		case ".org":
			v, err := parseImm(rest, symbols)
			if err != nil {
				return nil, &asmError{ln + 1, err.Error()}
			}
			if uint32(v) < pc {
				return nil, &asmError{ln + 1, ".org moves backwards"}
			}
			pc = uint32(v)
		case ".word":
			items = append(items, item{line: ln + 1, addr: pc, kind: 'w', op: rest})
			pc += 4
		case ".space":
			v, err := parseImm(rest, symbols)
			if err != nil {
				return nil, &asmError{ln + 1, err.Error()}
			}
			items = append(items, item{line: ln + 1, addr: pc, kind: 's', value: uint32(v)})
			pc += uint32(v)
		case ".align":
			v, err := parseImm(rest, symbols)
			if err != nil {
				return nil, &asmError{ln + 1, err.Error()}
			}
			a := uint32(v)
			if a == 0 || a&(a-1) != 0 {
				return nil, &asmError{ln + 1, ".align must be a power of two"}
			}
			pad := (a - pc%a) % a
			if pad > 0 {
				items = append(items, item{line: ln + 1, addr: pc, kind: 's', value: pad})
				pc += pad
			}
		default:
			items = append(items, item{line: ln + 1, addr: pc, kind: 'i', op: op, args: splitArgs(rest)})
			pc += 4 * instrSize(op)
		}
	}

	size := pc - origin
	img := make([]byte, size)
	put := func(addr uint32, w Word) {
		off := addr - origin
		img[off] = byte(w)
		img[off+1] = byte(w >> 8)
		img[off+2] = byte(w >> 16)
		img[off+3] = byte(w >> 24)
	}

	// Pass 2: encode.
	for _, it := range items {
		switch it.kind {
		case 's':
			continue
		case 'w':
			v, err := parseImm(it.op, symbols)
			if err != nil {
				return nil, &asmError{it.line, err.Error()}
			}
			put(it.addr, Word(uint32(v)))
			continue
		}
		words, err := encodeInstr(it, symbols)
		if err != nil {
			return nil, err
		}
		for i, w := range words {
			put(it.addr+uint32(4*i), w)
		}
	}
	return &Program{Origin: origin, Image: img, Symbols: symbols}, nil
}

func encodeInstr(it item, symbols map[string]uint32) ([]Word, error) {
	fail := func(format string, args ...any) ([]Word, error) {
		return nil, &asmError{it.line, fmt.Sprintf(format, args...)}
	}
	need := func(n int) error {
		if len(it.args) != n {
			return &asmError{it.line, fmt.Sprintf("%s needs %d operands, got %d", it.op, n, len(it.args))}
		}
		return nil
	}
	branchOff := func(target string) (int32, error) {
		v, err := parseImm(target, symbols)
		if err != nil {
			return 0, err
		}
		delta := int64(uint32(v)) - int64(it.addr) - 4
		if delta%4 != 0 {
			return 0, fmt.Errorf("branch target %q not word aligned", target)
		}
		off := delta / 4
		if off < -(1<<15) || off >= 1<<15 {
			return 0, fmt.Errorf("branch target %q out of range", target)
		}
		return int32(off), nil
	}

	rrr := map[string]Opcode{
		"add": OpADD, "sub": OpSUB, "and": OpAND, "or": OpOR, "xor": OpXOR,
		"sll": OpSLL, "srl": OpSRL, "sra": OpSRA, "slt": OpSLT, "sltu": OpSLTU,
	}
	rri := map[string]Opcode{
		"addi": OpADDI, "andi": OpANDI, "ori": OpORI, "xori": OpXORI,
		"slli": OpSLLI, "srli": OpSRLI, "slti": OpSLTI,
	}
	loads := map[string]Opcode{"lw": OpLW, "lb": OpLB, "lh": OpLH}
	stores := map[string]Opcode{"sw": OpSW, "sb": OpSB, "sh": OpSH}
	branches := map[string]Opcode{"beq": OpBEQ, "bne": OpBNE, "blt": OpBLT, "bge": OpBGE}

	switch {
	case it.op == "nop":
		return []Word{0}, nil
	case it.op == "halt":
		return []Word{EncodeR(OpHALT, 0, 0, 0)}, nil
	case rrr[it.op] != 0:
		if err := need(3); err != nil {
			return nil, err
		}
		rd, e1 := parseReg(it.args[0])
		rs1, e2 := parseReg(it.args[1])
		rs2, e3 := parseReg(it.args[2])
		if e1 != nil || e2 != nil || e3 != nil {
			return fail("bad operands in %v", it.args)
		}
		return []Word{EncodeR(rrr[it.op], rd, rs1, rs2)}, nil
	case rri[it.op] != 0:
		if err := need(3); err != nil {
			return nil, err
		}
		rd, e1 := parseReg(it.args[0])
		rs1, e2 := parseReg(it.args[1])
		imm, e3 := parseImm(it.args[2], symbols)
		if e1 != nil || e2 != nil || e3 != nil {
			return fail("bad operands in %v", it.args)
		}
		if imm < -(1<<15) || imm >= 1<<16 {
			return fail("immediate %d out of 16-bit range", imm)
		}
		return []Word{EncodeI(rri[it.op], rd, rs1, int32(imm))}, nil
	case it.op == "lui":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, e1 := parseReg(it.args[0])
		imm, e2 := parseImm(it.args[1], symbols)
		if e1 != nil || e2 != nil {
			return fail("bad operands in %v", it.args)
		}
		return []Word{EncodeI(OpLUI, rd, 0, int32(imm))}, nil
	case loads[it.op] != 0:
		if err := need(2); err != nil {
			return nil, err
		}
		rd, e1 := parseReg(it.args[0])
		base, off, e2 := parseMem(it.args[1], symbols)
		if e1 != nil || e2 != nil {
			return fail("bad operands in %v", it.args)
		}
		return []Word{EncodeI(loads[it.op], rd, base, int32(off))}, nil
	case stores[it.op] != 0:
		if err := need(2); err != nil {
			return nil, err
		}
		rd, e1 := parseReg(it.args[0])
		base, off, e2 := parseMem(it.args[1], symbols)
		if e1 != nil || e2 != nil {
			return fail("bad operands in %v", it.args)
		}
		return []Word{EncodeI(stores[it.op], rd, base, int32(off))}, nil
	case branches[it.op] != 0:
		if err := need(3); err != nil {
			return nil, err
		}
		rd, e1 := parseReg(it.args[0])
		rs1, e2 := parseReg(it.args[1])
		off, e3 := branchOff(it.args[2])
		if e1 != nil || e2 != nil || e3 != nil {
			return fail("bad operands in %v: %v %v %v", it.args, e1, e2, e3)
		}
		return []Word{EncodeI(branches[it.op], rd, rs1, off)}, nil
	case it.op == "jal" || it.op == "call" || it.op == "j":
		rd := 31
		target := ""
		switch it.op {
		case "jal":
			if err := need(2); err != nil {
				return nil, err
			}
			r, err := parseReg(it.args[0])
			if err != nil {
				return fail("%v", err)
			}
			rd, target = r, it.args[1]
		case "call":
			if err := need(1); err != nil {
				return nil, err
			}
			target = it.args[0]
		case "j":
			if err := need(1); err != nil {
				return nil, err
			}
			rd, target = 0, it.args[0]
		}
		v, err := parseImm(target, symbols)
		if err != nil {
			return fail("%v", err)
		}
		delta := int64(uint32(v)) - int64(it.addr) - 4
		if delta%4 != 0 {
			return fail("jump target %q not word aligned", target)
		}
		off := delta / 4
		if off < -(1<<20) || off >= 1<<20 {
			return fail("jump target %q out of range", target)
		}
		return []Word{EncodeJ(OpJAL, rd, int32(off))}, nil
	case it.op == "jalr":
		if err := need(3); err != nil {
			return nil, err
		}
		rd, e1 := parseReg(it.args[0])
		rs1, e2 := parseReg(it.args[1])
		imm, e3 := parseImm(it.args[2], symbols)
		if e1 != nil || e2 != nil || e3 != nil {
			return fail("bad operands in %v", it.args)
		}
		return []Word{EncodeI(OpJALR, rd, rs1, int32(imm))}, nil
	case it.op == "jr":
		if err := need(1); err != nil {
			return nil, err
		}
		rs1, err := parseReg(it.args[0])
		if err != nil {
			return fail("%v", err)
		}
		return []Word{EncodeI(OpJALR, 0, rs1, 0)}, nil
	case it.op == "ret":
		return []Word{EncodeI(OpJALR, 0, 31, 0)}, nil
	case it.op == "mv":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, e1 := parseReg(it.args[0])
		rs1, e2 := parseReg(it.args[1])
		if e1 != nil || e2 != nil {
			return fail("bad operands in %v", it.args)
		}
		return []Word{EncodeI(OpADDI, rd, rs1, 0)}, nil
	case it.op == "li" || it.op == "la":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, e1 := parseReg(it.args[0])
		imm, e2 := parseImm(it.args[1], symbols)
		if e1 != nil || e2 != nil {
			return fail("bad operands in %v", it.args)
		}
		v := uint32(imm)
		return []Word{
			EncodeI(OpLUI, rd, 0, int32(v>>16)),
			EncodeI(OpORI, rd, rd, int32(v&0xffff)),
		}, nil
	default:
		return fail("unknown instruction %q", it.op)
	}
}
