// Package isa implements a small 32-bit RISC instruction set standing in for
// the LANai processor core. The fault-injection campaign of the paper flips
// random bits in the machine code of the MCP's send_chunk routine and
// observes the outcome; to reproduce that experiment faithfully the
// simulator needs real machine code whose corruption has instruction-level
// consequences (invalid opcodes, wild branches, wrong stores), not a
// probability table. The package provides the encoding, a two-pass
// assembler, a disassembler and an interpreter with memory-mapped I/O hooks.
//
// The ISA is deliberately LANai-flavored: 32 general registers with r0
// hardwired to zero, fixed 32-bit instructions, word-addressed control flow,
// and a sparse opcode space so that roughly half of the single-bit
// corruptions of an opcode field yield an undefined instruction, as on real
// silicon.
package isa

import "fmt"

// Opcode identifies an instruction. Valid opcodes are assigned sparsely in
// the 6-bit opcode space: 30 of 64 encodings are defined, so bit flips in
// the opcode field frequently produce undefined instructions.
type Opcode uint8

// Instruction opcodes.
const (
	OpNOP Opcode = 0x00

	// Register-register ALU.
	OpADD  Opcode = 0x01
	OpSUB  Opcode = 0x02
	OpAND  Opcode = 0x03
	OpOR   Opcode = 0x04
	OpXOR  Opcode = 0x05
	OpSLL  Opcode = 0x06
	OpSRL  Opcode = 0x07
	OpSRA  Opcode = 0x08
	OpSLT  Opcode = 0x09
	OpSLTU Opcode = 0x0A

	// Register-immediate ALU.
	OpADDI Opcode = 0x10
	OpANDI Opcode = 0x11
	OpORI  Opcode = 0x12
	OpXORI Opcode = 0x13
	OpSLLI Opcode = 0x14
	OpSRLI Opcode = 0x15
	OpSLTI Opcode = 0x16
	OpLUI  Opcode = 0x17

	// Memory.
	OpLW Opcode = 0x20
	OpSW Opcode = 0x21
	OpLB Opcode = 0x22
	OpSB Opcode = 0x23
	OpLH Opcode = 0x24
	OpSH Opcode = 0x25

	// Control flow. Branch offsets are signed 16-bit word offsets relative
	// to the instruction after the branch.
	OpBEQ  Opcode = 0x28
	OpBNE  Opcode = 0x29
	OpBLT  Opcode = 0x2A
	OpBGE  Opcode = 0x2B
	OpJAL  Opcode = 0x30 // rd <- pc+4; pc += signed 21-bit word offset
	OpJALR Opcode = 0x31 // rd <- pc+4; pc = (rs1 + imm16) & ^3

	OpHALT Opcode = 0x3F
)

var opcodeNames = map[Opcode]string{
	OpNOP: "nop",
	OpADD: "add", OpSUB: "sub", OpAND: "and", OpOR: "or", OpXOR: "xor",
	OpSLL: "sll", OpSRL: "srl", OpSRA: "sra", OpSLT: "slt", OpSLTU: "sltu",
	OpADDI: "addi", OpANDI: "andi", OpORI: "ori", OpXORI: "xori",
	OpSLLI: "slli", OpSRLI: "srli", OpSLTI: "slti", OpLUI: "lui",
	OpLW: "lw", OpSW: "sw", OpLB: "lb", OpSB: "sb", OpLH: "lh", OpSH: "sh",
	OpBEQ: "beq", OpBNE: "bne", OpBLT: "blt", OpBGE: "bge",
	OpJAL: "jal", OpJALR: "jalr",
	OpHALT: "halt",
}

// Valid reports whether op is a defined opcode.
func (op Opcode) Valid() bool {
	_, ok := opcodeNames[op]
	return ok
}

// String returns the assembler mnemonic, or "op?xx" for undefined opcodes.
func (op Opcode) String() string {
	if s, ok := opcodeNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op?%02x", uint8(op))
}

// Instruction word layout:
//
//	[31:26] opcode
//	[25:21] rd
//	[20:16] rs1
//	R-type: [15:11] rs2, [10:0] zero
//	I-type: [15:0]  signed immediate
//	JAL:    [20:0]  signed word offset (rd in [25:21])
type Word uint32

// Field extraction helpers.

// Op returns the opcode field.
func (w Word) Op() Opcode { return Opcode(w >> 26) }

// Rd returns the destination register field.
func (w Word) Rd() int { return int(w >> 21 & 0x1f) }

// Rs1 returns the first source register field.
func (w Word) Rs1() int { return int(w >> 16 & 0x1f) }

// Rs2 returns the second source register field.
func (w Word) Rs2() int { return int(w >> 11 & 0x1f) }

// Imm16 returns the sign-extended 16-bit immediate.
func (w Word) Imm16() int32 { return int32(int16(w & 0xffff)) }

// Imm21 returns the sign-extended 21-bit jump offset (in words).
func (w Word) Imm21() int32 {
	v := int32(w & 0x1fffff)
	if v&0x100000 != 0 {
		v |= ^int32(0x1fffff)
	}
	return v
}

// EncodeR builds an R-type instruction word.
func EncodeR(op Opcode, rd, rs1, rs2 int) Word {
	return Word(op)<<26 | Word(rd&0x1f)<<21 | Word(rs1&0x1f)<<16 | Word(rs2&0x1f)<<11
}

// EncodeI builds an I-type instruction word.
func EncodeI(op Opcode, rd, rs1 int, imm int32) Word {
	return Word(op)<<26 | Word(rd&0x1f)<<21 | Word(rs1&0x1f)<<16 | Word(uint16(imm))
}

// EncodeJ builds a JAL instruction word with a signed word offset.
func EncodeJ(op Opcode, rd int, off int32) Word {
	return Word(op)<<26 | Word(rd&0x1f)<<21 | Word(uint32(off)&0x1fffff)
}

// Listing disassembles the word range [lo, hi) of a memory image into
// "addr: word  mnemonic" lines, annotating addresses that carry symbols.
func Listing(mem []byte, lo, hi uint32, symbols map[string]uint32) string {
	byAddr := make(map[uint32][]string)
	for name, addr := range symbols {
		byAddr[addr] = append(byAddr[addr], name)
	}
	for _, names := range byAddr {
		sortStrings(names)
	}
	var b []byte
	for addr := lo &^ 3; addr+4 <= hi && int(addr)+4 <= len(mem); addr += 4 {
		for _, name := range byAddr[addr] {
			b = append(b, fmt.Sprintf("%s:\n", name)...)
		}
		w := Word(uint32(mem[addr]) | uint32(mem[addr+1])<<8 |
			uint32(mem[addr+2])<<16 | uint32(mem[addr+3])<<24)
		b = append(b, fmt.Sprintf("  %06x: %08x  %s\n", addr, uint32(w), Disassemble(w))...)
	}
	return string(b)
}

func sortStrings(v []string) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j-1] > v[j]; j-- {
			v[j-1], v[j] = v[j], v[j-1]
		}
	}
}

// Disassemble renders a single instruction word.
func Disassemble(w Word) string {
	op := w.Op()
	switch op {
	case OpNOP:
		if w == 0 {
			return "nop"
		}
		return fmt.Sprintf("nop ; nonzero fields %08x", uint32(w))
	case OpADD, OpSUB, OpAND, OpOR, OpXOR, OpSLL, OpSRL, OpSRA, OpSLT, OpSLTU:
		return fmt.Sprintf("%s r%d, r%d, r%d", op, w.Rd(), w.Rs1(), w.Rs2())
	case OpADDI, OpANDI, OpORI, OpXORI, OpSLLI, OpSRLI, OpSLTI:
		return fmt.Sprintf("%s r%d, r%d, %d", op, w.Rd(), w.Rs1(), w.Imm16())
	case OpLUI:
		return fmt.Sprintf("lui r%d, 0x%x", w.Rd(), uint16(w&0xffff))
	case OpLW, OpLB, OpLH:
		return fmt.Sprintf("%s r%d, %d(r%d)", op, w.Rd(), w.Imm16(), w.Rs1())
	case OpSW, OpSB, OpSH:
		return fmt.Sprintf("%s r%d, %d(r%d)", op, w.Rd(), w.Imm16(), w.Rs1())
	case OpBEQ, OpBNE, OpBLT, OpBGE:
		return fmt.Sprintf("%s r%d, r%d, %+d", op, w.Rd(), w.Rs1(), w.Imm16())
	case OpJAL:
		return fmt.Sprintf("jal r%d, %+d", w.Rd(), w.Imm21())
	case OpJALR:
		return fmt.Sprintf("jalr r%d, r%d, %d", w.Rd(), w.Rs1(), w.Imm16())
	case OpHALT:
		return "halt"
	default:
		return fmt.Sprintf(".word 0x%08x ; undefined opcode %s", uint32(w), op)
	}
}
