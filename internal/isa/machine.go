package isa

import (
	"encoding/binary"
	"fmt"
)

// StopReason classifies why execution stopped. These map directly onto the
// failure categories of the paper's fault-injection study (Table 1): an
// undefined instruction or a memory violation crashes the network processor
// (local interface hang), an exhausted cycle budget is an infinite loop
// (also a hang), a jump through the reset vector restarts the MCP, and a
// clean HALT lets the harness inspect the outputs for corruption.
type StopReason int

// Stop reasons.
const (
	StopHalted StopReason = iota + 1
	StopInvalidOpcode
	StopUnalignedAccess
	StopOutOfRange
	StopBudgetExhausted
	StopResetVector
	StopMMIOFault
)

// String names the stop reason.
func (r StopReason) String() string {
	switch r {
	case StopHalted:
		return "halted"
	case StopInvalidOpcode:
		return "invalid-opcode"
	case StopUnalignedAccess:
		return "unaligned-access"
	case StopOutOfRange:
		return "out-of-range-access"
	case StopBudgetExhausted:
		return "cycle-budget-exhausted"
	case StopResetVector:
		return "reset-vector"
	case StopMMIOFault:
		return "mmio-fault"
	default:
		return fmt.Sprintf("stop?%d", int(r))
	}
}

// MMIORegion is a memory-mapped device window. Loads and stores inside
// [Base, Base+Size) are routed to the handlers instead of SRAM. A handler
// returning ok=false raises an MMIO fault (the device rejected the access),
// which models stray writes wedging interface logic.
type MMIORegion struct {
	Name  string
	Base  uint32
	Size  uint32
	Read  func(addr uint32) (val uint32, ok bool)
	Write func(addr uint32, val uint32) (ok bool)
}

// Machine is an interpreter instance: a register file, a flat SRAM and a set
// of MMIO windows.
type Machine struct {
	Mem   []byte
	Regs  [32]uint32
	PC    uint32
	mmio  []MMIORegion
	Cycle uint64

	// ResetVector is the address treated as the MCP restart entry; jumping
	// to it stops execution with StopResetVector when TrapOnReset is set.
	// On the real card a wild branch through address 0 re-enters the
	// bootstrap.
	ResetVector uint32
	TrapOnReset bool
}

// NewMachine returns a machine with memSize bytes of SRAM, PC at 0 and all
// registers zero.
func NewMachine(memSize int) *Machine {
	return &Machine{Mem: make([]byte, memSize)}
}

// AddMMIO registers a device window. Windows must not overlap SRAM-resident
// code the program executes; instruction fetch always reads SRAM.
func (m *Machine) AddMMIO(r MMIORegion) { m.mmio = append(m.mmio, r) }

func (m *Machine) mmioAt(addr uint32) *MMIORegion {
	for i := range m.mmio {
		r := &m.mmio[i]
		if addr >= r.Base && addr < r.Base+r.Size {
			return r
		}
	}
	return nil
}

// LoadWord reads a 32-bit little-endian word from SRAM (not MMIO).
func (m *Machine) LoadWord(addr uint32) (uint32, bool) {
	if int(addr)+4 > len(m.Mem) {
		return 0, false
	}
	return binary.LittleEndian.Uint32(m.Mem[addr:]), true
}

// StoreWord writes a 32-bit little-endian word to SRAM (not MMIO).
func (m *Machine) StoreWord(addr uint32, v uint32) bool {
	if int(addr)+4 > len(m.Mem) {
		return false
	}
	binary.LittleEndian.PutUint32(m.Mem[addr:], v)
	return true
}

func (m *Machine) load(addr uint32, size uint32) (uint32, StopReason) {
	if addr%size != 0 {
		return 0, StopUnalignedAccess
	}
	if r := m.mmioAt(addr); r != nil {
		v, ok := r.Read(addr)
		if !ok {
			return 0, StopMMIOFault
		}
		return v, 0
	}
	if int(addr)+int(size) > len(m.Mem) {
		return 0, StopOutOfRange
	}
	switch size {
	case 1:
		return uint32(m.Mem[addr]), 0
	case 2:
		return uint32(binary.LittleEndian.Uint16(m.Mem[addr:])), 0
	default:
		return binary.LittleEndian.Uint32(m.Mem[addr:]), 0
	}
}

func (m *Machine) store(addr uint32, v uint32, size uint32) StopReason {
	if addr%size != 0 {
		return StopUnalignedAccess
	}
	if r := m.mmioAt(addr); r != nil {
		if !r.Write(addr, v) {
			return StopMMIOFault
		}
		return 0
	}
	if int(addr)+int(size) > len(m.Mem) {
		return StopOutOfRange
	}
	switch size {
	case 1:
		m.Mem[addr] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(m.Mem[addr:], uint16(v))
	default:
		binary.LittleEndian.PutUint32(m.Mem[addr:], v)
	}
	return 0
}

// Step executes one instruction. It returns 0 while the machine can
// continue, or the reason it stopped.
func (m *Machine) Step() StopReason {
	if m.PC%4 != 0 {
		return StopUnalignedAccess
	}
	if m.TrapOnReset && m.Cycle > 0 && m.PC == m.ResetVector {
		return StopResetVector
	}
	raw, ok := m.LoadWord(m.PC)
	if !ok {
		return StopOutOfRange
	}
	w := Word(raw)
	op := w.Op()
	next := m.PC + 4
	m.Cycle++

	// Strict decode: R-type (and HALT/NOP) encodings have reserved low
	// bits that must be zero; a set reserved bit is an undefined
	// instruction, as on real RISC cores. This matters to the fault
	// model: a bit flip landing in a reserved field traps instead of
	// being silently ignored.
	switch op {
	case OpADD, OpSUB, OpAND, OpOR, OpXOR, OpSLL, OpSRL, OpSRA, OpSLT, OpSLTU:
		if w&0x7ff != 0 {
			return StopInvalidOpcode
		}
	case OpNOP, OpHALT:
		if w&0x03ffffff != 0 {
			return StopInvalidOpcode
		}
	}

	rd, rs1, rs2 := w.Rd(), w.Rs1(), w.Rs2()
	a, b := m.Regs[rs1], m.Regs[rs2]
	imm := w.Imm16()

	set := func(r int, v uint32) {
		if r != 0 {
			m.Regs[r] = v
		}
	}

	switch op {
	case OpNOP:
		// nothing
	case OpADD:
		set(rd, a+b)
	case OpSUB:
		set(rd, a-b)
	case OpAND:
		set(rd, a&b)
	case OpOR:
		set(rd, a|b)
	case OpXOR:
		set(rd, a^b)
	case OpSLL:
		set(rd, a<<(b&31))
	case OpSRL:
		set(rd, a>>(b&31))
	case OpSRA:
		set(rd, uint32(int32(a)>>(b&31)))
	case OpSLT:
		if int32(a) < int32(b) {
			set(rd, 1)
		} else {
			set(rd, 0)
		}
	case OpSLTU:
		if a < b {
			set(rd, 1)
		} else {
			set(rd, 0)
		}
	case OpADDI:
		set(rd, a+uint32(imm))
	case OpANDI:
		set(rd, a&uint32(uint16(w)))
	case OpORI:
		set(rd, a|uint32(uint16(w)))
	case OpXORI:
		set(rd, a^uint32(uint16(w)))
	case OpSLLI:
		set(rd, a<<(uint32(imm)&31))
	case OpSRLI:
		set(rd, a>>(uint32(imm)&31))
	case OpSLTI:
		if int32(a) < imm {
			set(rd, 1)
		} else {
			set(rd, 0)
		}
	case OpLUI:
		set(rd, uint32(uint16(w))<<16)
	case OpLW:
		v, trap := m.load(a+uint32(imm), 4)
		if trap != 0 {
			return trap
		}
		set(rd, v)
	case OpLH:
		v, trap := m.load(a+uint32(imm), 2)
		if trap != 0 {
			return trap
		}
		set(rd, uint32(int32(int16(v))))
	case OpLB:
		v, trap := m.load(a+uint32(imm), 1)
		if trap != 0 {
			return trap
		}
		set(rd, uint32(int32(int8(v))))
	case OpSW:
		if trap := m.store(a+uint32(imm), m.Regs[rd], 4); trap != 0 {
			return trap
		}
	case OpSH:
		if trap := m.store(a+uint32(imm), m.Regs[rd], 2); trap != 0 {
			return trap
		}
	case OpSB:
		if trap := m.store(a+uint32(imm), m.Regs[rd], 1); trap != 0 {
			return trap
		}
	case OpBEQ:
		if m.Regs[rd] == a {
			next = m.PC + 4 + uint32(imm)*4
		}
	case OpBNE:
		if m.Regs[rd] != a {
			next = m.PC + 4 + uint32(imm)*4
		}
	case OpBLT:
		if int32(m.Regs[rd]) < int32(a) {
			next = m.PC + 4 + uint32(imm)*4
		}
	case OpBGE:
		if int32(m.Regs[rd]) >= int32(a) {
			next = m.PC + 4 + uint32(imm)*4
		}
	case OpJAL:
		set(rd, m.PC+4)
		next = m.PC + 4 + uint32(w.Imm21())*4
	case OpJALR:
		set(rd, m.PC+4)
		next = (a + uint32(imm)) &^ 3
	case OpHALT:
		return StopHalted
	default:
		return StopInvalidOpcode
	}
	m.PC = next
	return 0
}

// Run executes until the machine stops or budget instructions have retired.
// A zero trap return never happens: the result is always the terminal
// reason, with StopBudgetExhausted standing in for "still running" — which
// the fault harness interprets as a processor hang (infinite loop).
func (m *Machine) Run(budget uint64) StopReason {
	for i := uint64(0); i < budget; i++ {
		if r := m.Step(); r != 0 {
			return r
		}
	}
	return StopBudgetExhausted
}

// Snapshot returns a copy of SRAM for later comparison (golden-run diffing).
func (m *Machine) Snapshot() []byte {
	cp := make([]byte, len(m.Mem))
	copy(cp, m.Mem)
	return cp
}
