package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustAssemble(t *testing.T, src string, origin uint32) *Program {
	t.Helper()
	p, err := Assemble(src, origin)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func loadProgram(p *Program, memSize int) *Machine {
	m := NewMachine(memSize)
	copy(m.Mem[p.Origin:], p.Image)
	m.PC = p.Origin
	return m
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	w := EncodeR(OpADD, 3, 4, 5)
	if w.Op() != OpADD || w.Rd() != 3 || w.Rs1() != 4 || w.Rs2() != 5 {
		t.Errorf("R-type round trip failed: %08x", uint32(w))
	}
	w = EncodeI(OpADDI, 1, 2, -7)
	if w.Op() != OpADDI || w.Rd() != 1 || w.Rs1() != 2 || w.Imm16() != -7 {
		t.Errorf("I-type round trip failed: %08x", uint32(w))
	}
	w = EncodeJ(OpJAL, 31, -100)
	if w.Op() != OpJAL || w.Rd() != 31 || w.Imm21() != -100 {
		t.Errorf("J-type round trip failed: %08x", uint32(w))
	}
}

func TestOpcodeSparsity(t *testing.T) {
	valid := 0
	for op := 0; op < 64; op++ {
		if Opcode(op).Valid() {
			valid++
		}
	}
	// The fault model depends on a sparse opcode space; keep roughly half
	// the encodings undefined.
	if valid < 20 || valid > 40 {
		t.Errorf("valid opcodes = %d, want 20..40", valid)
	}
}

func TestArithmeticProgram(t *testing.T) {
	p := mustAssemble(t, `
		start:
			addi r1, r0, 10
			addi r2, r0, 32
			add  r3, r1, r2   ; 42
			sub  r4, r2, r1   ; 22
			and  r5, r1, r2   ; 0
			or   r6, r1, r2   ; 42
			xor  r7, r3, r6   ; 0
			halt
	`, 0x100)
	m := loadProgram(p, 4096)
	if r := m.Run(100); r != StopHalted {
		t.Fatalf("stop = %v, want halted", r)
	}
	want := map[int]uint32{1: 10, 2: 32, 3: 42, 4: 22, 5: 0, 6: 42, 7: 0}
	for reg, v := range want {
		if m.Regs[reg] != v {
			t.Errorf("r%d = %d, want %d", reg, m.Regs[reg], v)
		}
	}
}

func TestShiftsAndCompares(t *testing.T) {
	p := mustAssemble(t, `
		addi r1, r0, 1
		slli r2, r1, 8      ; 256
		srli r3, r2, 4      ; 16
		addi r4, r0, -8
		sra  r5, r4, r1     ; -4
		slt  r6, r4, r1     ; 1 (signed)
		sltu r7, r4, r1     ; 0 (unsigned: big)
		slti r8, r4, 0      ; 1
		halt
	`, 0)
	m := loadProgram(p, 4096)
	if r := m.Run(100); r != StopHalted {
		t.Fatalf("stop = %v", r)
	}
	if m.Regs[2] != 256 || m.Regs[3] != 16 {
		t.Errorf("shifts wrong: r2=%d r3=%d", m.Regs[2], m.Regs[3])
	}
	if int32(m.Regs[5]) != -4 {
		t.Errorf("sra wrong: %d", int32(m.Regs[5]))
	}
	if m.Regs[6] != 1 || m.Regs[7] != 0 || m.Regs[8] != 1 {
		t.Errorf("compares wrong: %d %d %d", m.Regs[6], m.Regs[7], m.Regs[8])
	}
}

func TestLoadsAndStores(t *testing.T) {
	p := mustAssemble(t, `
		li  r1, 0x200
		li  r2, 0x12345678
		sw  r2, 0(r1)
		lw  r3, 0(r1)
		lb  r4, 0(r1)    ; 0x78
		lb  r5, 3(r1)    ; 0x12
		lh  r6, 0(r1)    ; 0x5678
		sb  r4, 8(r1)
		lb  r7, 8(r1)
		sh  r6, 12(r1)
		lh  r8, 12(r1)
		halt
	`, 0)
	m := loadProgram(p, 4096)
	if r := m.Run(100); r != StopHalted {
		t.Fatalf("stop = %v", r)
	}
	if m.Regs[3] != 0x12345678 {
		t.Errorf("lw = %08x", m.Regs[3])
	}
	if m.Regs[4] != 0x78 || m.Regs[5] != 0x12 {
		t.Errorf("lb = %x, %x", m.Regs[4], m.Regs[5])
	}
	if m.Regs[6] != 0x5678 || m.Regs[7] != 0x78 || m.Regs[8] != 0x5678 {
		t.Errorf("lh/sb/sh: %x %x %x", m.Regs[6], m.Regs[7], m.Regs[8])
	}
}

func TestSignExtensionOnLoads(t *testing.T) {
	p := mustAssemble(t, `
		li  r1, 0x200
		li  r2, 0xfff6
		sh  r2, 0(r1)
		lh  r3, 0(r1)    ; -10 sign extended
		li  r4, 0x80
		sb  r4, 4(r1)
		lb  r5, 4(r1)    ; -128 sign extended
		halt
	`, 0)
	m := loadProgram(p, 4096)
	if r := m.Run(100); r != StopHalted {
		t.Fatalf("stop = %v", r)
	}
	if int32(m.Regs[3]) != -10 {
		t.Errorf("lh sign extension: %d", int32(m.Regs[3]))
	}
	if int32(m.Regs[5]) != -128 {
		t.Errorf("lb sign extension: %d", int32(m.Regs[5]))
	}
}

func TestBranchLoop(t *testing.T) {
	p := mustAssemble(t, `
		; sum 1..10 into r2
		addi r1, r0, 10
		addi r2, r0, 0
	loop:
		add  r2, r2, r1
		addi r1, r1, -1
		bne  r1, r0, loop
		halt
	`, 0)
	m := loadProgram(p, 4096)
	if r := m.Run(1000); r != StopHalted {
		t.Fatalf("stop = %v", r)
	}
	if m.Regs[2] != 55 {
		t.Errorf("sum = %d, want 55", m.Regs[2])
	}
}

func TestCallRet(t *testing.T) {
	p := mustAssemble(t, `
		addi r1, r0, 5
		call double
		call double
		halt
	double:
		add  r1, r1, r1
		ret
	`, 0)
	m := loadProgram(p, 4096)
	if r := m.Run(100); r != StopHalted {
		t.Fatalf("stop = %v", r)
	}
	if m.Regs[1] != 20 {
		t.Errorf("r1 = %d, want 20", m.Regs[1])
	}
}

func TestR0HardwiredZero(t *testing.T) {
	p := mustAssemble(t, `
		addi r0, r0, 99
		add  r1, r0, r0
		halt
	`, 0)
	m := loadProgram(p, 4096)
	m.Run(10)
	if m.Regs[0] != 0 || m.Regs[1] != 0 {
		t.Errorf("r0 = %d, r1 = %d, want 0, 0", m.Regs[0], m.Regs[1])
	}
}

func TestTrapInvalidOpcode(t *testing.T) {
	m := NewMachine(4096)
	m.StoreWord(0, uint32(Word(0x3E)<<26)) // undefined opcode
	if r := m.Run(10); r != StopInvalidOpcode {
		t.Errorf("stop = %v, want invalid-opcode", r)
	}
}

func TestTrapOutOfRange(t *testing.T) {
	p := mustAssemble(t, `
		li r1, 0x7fff0000
		lw r2, 0(r1)
		halt
	`, 0)
	m := loadProgram(p, 4096)
	if r := m.Run(10); r != StopOutOfRange {
		t.Errorf("stop = %v, want out-of-range", r)
	}
}

func TestTrapUnaligned(t *testing.T) {
	p := mustAssemble(t, `
		addi r1, r0, 2
		lw   r2, 1(r1)
		halt
	`, 0)
	m := loadProgram(p, 4096)
	if r := m.Run(10); r != StopUnalignedAccess {
		t.Errorf("stop = %v, want unaligned", r)
	}
}

func TestTrapBudget(t *testing.T) {
	p := mustAssemble(t, `
	spin:
		j spin
	`, 0)
	m := loadProgram(p, 4096)
	if r := m.Run(100); r != StopBudgetExhausted {
		t.Errorf("stop = %v, want budget-exhausted", r)
	}
}

func TestResetVectorDetection(t *testing.T) {
	p := mustAssemble(t, `
		.org 0x100
		j 0      ; wild jump back to the bootstrap
	`, 0x100)
	m := loadProgram(p, 4096)
	m.PC = 0x100
	m.ResetVector = 0
	m.TrapOnReset = true
	if r := m.Run(10); r != StopResetVector {
		t.Errorf("stop = %v, want reset-vector", r)
	}
}

func TestMMIOReadWrite(t *testing.T) {
	var stored uint32
	m := NewMachine(4096)
	m.AddMMIO(MMIORegion{
		Name: "dev", Base: 0x8000_0000, Size: 0x100,
		Read:  func(addr uint32) (uint32, bool) { return stored + 1, true },
		Write: func(addr uint32, v uint32) bool { stored = v; return true },
	})
	p := mustAssemble(t, `
		li r1, 0x80000000
		li r2, 41
		sw r2, 0(r1)
		lw r3, 4(r1)
		halt
	`, 0)
	copy(m.Mem, p.Image)
	if r := m.Run(20); r != StopHalted {
		t.Fatalf("stop = %v", r)
	}
	if stored != 41 || m.Regs[3] != 42 {
		t.Errorf("mmio: stored=%d r3=%d", stored, m.Regs[3])
	}
}

func TestMMIOFault(t *testing.T) {
	m := NewMachine(4096)
	m.AddMMIO(MMIORegion{
		Name: "strict", Base: 0x8000_0000, Size: 0x100,
		Read:  func(addr uint32) (uint32, bool) { return 0, false },
		Write: func(addr uint32, v uint32) bool { return false },
	})
	p := mustAssemble(t, `
		li r1, 0x80000000
		sw r0, 0(r1)
		halt
	`, 0)
	copy(m.Mem, p.Image)
	if r := m.Run(20); r != StopMMIOFault {
		t.Errorf("stop = %v, want mmio-fault", r)
	}
}

func TestAssemblerErrors(t *testing.T) {
	cases := []string{
		"bogus r1, r2",
		"add r1, r2",         // wrong arity
		"addi r1, r2, 99999", // imm out of range
		"lw r1, r2",          // bad memory operand
		"beq r1, r2, nowhere",
		"dup: nop\ndup: nop",
		"add r99, r1, r2",
	}
	for _, src := range cases {
		if _, err := Assemble(src, 0); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestAssemblerDirectives(t *testing.T) {
	p := mustAssemble(t, `
		.org 0x10
		entry:
			nop
		.align 16
		tbl:
		.word 0xdeadbeef
		.space 8
		after:
			halt
	`, 0x10)
	if p.Symbols["entry"] != 0x10 {
		t.Errorf("entry = %#x", p.Symbols["entry"])
	}
	if p.Symbols["tbl"]%16 != 0 {
		t.Errorf("tbl not aligned: %#x", p.Symbols["tbl"])
	}
	if p.Symbols["after"] != p.Symbols["tbl"]+12 {
		t.Errorf("after = %#x, tbl = %#x", p.Symbols["after"], p.Symbols["tbl"])
	}
	m := loadProgram(p, 4096)
	w, _ := m.LoadWord(p.Symbols["tbl"])
	if w != 0xdeadbeef {
		t.Errorf(".word = %08x", w)
	}
}

func TestSymbolRange(t *testing.T) {
	p := mustAssemble(t, `
	a:
		nop
		nop
	b:
		halt
	`, 0)
	lo, hi, err := p.SymbolRange("a", "b")
	if err != nil || lo != 0 || hi != 8 {
		t.Errorf("range = [%d,%d), err=%v", lo, hi, err)
	}
	if _, _, err := p.SymbolRange("a", "zzz"); err == nil {
		t.Error("missing symbol accepted")
	}
	if _, _, err := p.SymbolRange("b", "a"); err == nil {
		t.Error("reversed range accepted")
	}
}

func TestHiLoSelectors(t *testing.T) {
	p := mustAssemble(t, `
		.org 0x0
			lui  r1, %hi(data)
			ori  r1, r1, %lo(data)
			lw   r2, 0(r1)
			halt
		.org 0x12340
		data:
		.word 7
	`, 0)
	m := loadProgram(p, 0x20000)
	if r := m.Run(10); r != StopHalted {
		t.Fatalf("stop = %v", r)
	}
	if m.Regs[2] != 7 {
		t.Errorf("r2 = %d, want 7", m.Regs[2])
	}
}

func TestDisassembleKnown(t *testing.T) {
	cases := []struct {
		w    Word
		want string
	}{
		{EncodeR(OpADD, 1, 2, 3), "add r1, r2, r3"},
		{EncodeI(OpADDI, 1, 2, -5), "addi r1, r2, -5"},
		{EncodeI(OpLW, 4, 5, 16), "lw r4, 16(r5)"},
		{EncodeJ(OpJAL, 31, 10), "jal r31, +10"},
		{EncodeR(OpHALT, 0, 0, 0), "halt"},
	}
	for _, c := range cases {
		if got := Disassemble(c.w); got != c.want {
			t.Errorf("Disassemble(%08x) = %q, want %q", uint32(c.w), got, c.want)
		}
	}
	if got := Disassemble(Word(0x3E) << 26); !strings.Contains(got, "undefined") {
		t.Errorf("undefined opcode disassembly = %q", got)
	}
}

// Property: assembling and disassembling every defined R/I-type opcode
// yields the mnemonic of that opcode.
func TestPropertyDisassembleMnemonic(t *testing.T) {
	for op, name := range opcodeNames {
		if op == OpNOP || op == OpHALT {
			continue
		}
		w := EncodeI(op, 1, 2, 4)
		if !strings.HasPrefix(Disassemble(w), name) {
			t.Errorf("Disassemble(%v) = %q, want prefix %q", op, Disassemble(w), name)
		}
	}
}

// Property: field extractors are consistent with the encoders for all
// register/immediate combinations.
func TestPropertyEncodeFields(t *testing.T) {
	f := func(rd, rs1, rs2 uint8, imm int16) bool {
		d, s1, s2 := int(rd%32), int(rs1%32), int(rs2%32)
		r := EncodeR(OpXOR, d, s1, s2)
		i := EncodeI(OpADDI, d, s1, int32(imm))
		return r.Rd() == d && r.Rs1() == s1 && r.Rs2() == s2 &&
			i.Rd() == d && i.Rs1() == s1 && i.Imm16() == int32(imm)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the machine never panics on arbitrary instruction words; every
// word either executes or traps.
func TestPropertyNoPanicOnArbitraryCode(t *testing.T) {
	f := func(words []uint32) bool {
		m := NewMachine(1 << 16)
		for i, w := range words {
			if 4*i+4 > len(m.Mem) {
				break
			}
			m.StoreWord(uint32(4*i), w)
		}
		m.Run(2000)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestListing(t *testing.T) {
	p := mustAssemble(t, `
	entry:
		addi r1, r0, 5
	loop:
		addi r1, r1, -1
		bne  r1, r0, loop
		halt
	`, 0x10)
	mem := make([]byte, 0x100)
	copy(mem[p.Origin:], p.Image)
	out := Listing(mem, p.Origin, p.Origin+uint32(len(p.Image)), p.Symbols)
	for _, want := range []string{"entry:", "loop:", "addi r1, r0, 5", "halt", "000010:"} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q:\n%s", want, out)
		}
	}
}
