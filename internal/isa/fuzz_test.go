package isa

import "testing"

// FuzzAssemble: arbitrary source either assembles or errors; assembled
// output must load and run without panicking.
func FuzzAssemble(f *testing.F) {
	f.Add("addi r1, r0, 5\nhalt\n")
	f.Add("loop:\n j loop\n")
	f.Add(".org 0x10\nli r1, 0x90000000\nsw r0, 0(r1)\n")
	f.Add("lab el:\nadd r1")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src, 0)
		if err != nil {
			return
		}
		if len(p.Image) == 0 {
			return
		}
		m := NewMachine(1 << 16)
		if int(p.Origin)+len(p.Image) <= len(m.Mem) {
			copy(m.Mem[p.Origin:], p.Image)
			m.PC = p.Origin
			m.Run(5000)
		}
	})
}

// FuzzExecute: arbitrary code images never panic the interpreter.
func FuzzExecute(f *testing.F) {
	f.Add([]byte{0x00, 0x00, 0x00, 0x04}) // add-ish word
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, image []byte) {
		m := NewMachine(1 << 14)
		copy(m.Mem, image)
		m.TrapOnReset = false
		m.Run(5000)
	})
}
