// Package repro's benchmark suite regenerates every table and figure of
// the paper as a testing.B benchmark. Each benchmark runs the experiment
// and reports the headline quantities as custom metrics (in the paper's
// units), so `go test -bench=. -benchmem` prints the reproduction next to
// the usual ns/op:
//
//	BenchmarkTable1FaultInjection    hang%%, corrupt%%, noimpact%%
//	BenchmarkFigure7Bandwidth        MB/s at the asymptote, GM and FTGM
//	BenchmarkFigure8Latency          small-message half-RTT µs, GM and FTGM
//	BenchmarkTable2Metrics           host/LANai utilization µs
//	BenchmarkTable3Recovery          detection/FTD/per-process µs
//	BenchmarkFigure9Timeline         total recovery ms
//	BenchmarkRecoveryEffectiveness   recovered fraction
//	BenchmarkFigure4/5Scenario       deliveries in the crash windows
//	BenchmarkAblation*               the DESIGN.md §6 ablations
package repro

import (
	"testing"

	"repro/gm"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/parallel"
)

// BenchmarkTable1FaultInjection reproduces Table 1: 1000 single-bit flips
// in the send_chunk section, classified by executing the corrupted
// firmware.
func BenchmarkTable1FaultInjection(b *testing.B) {
	var last fault.CampaignResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(1000, 2003)
		if err != nil {
			b.Fatal(err)
		}
		last = res.Campaign
	}
	b.ReportMetric(last.Percent(fault.OutcomeLocalHang), "hang%")
	b.ReportMetric(last.Percent(fault.OutcomeCorrupted), "corrupt%")
	b.ReportMetric(last.Percent(fault.OutcomeNoImpact), "noimpact%")
	b.ReportMetric(last.Percent(fault.OutcomeHostCrash), "hostcrash%")
}

// BenchmarkFigure7Bandwidth reproduces Figure 7's asymptote and the
// fragmentation dip: bidirectional streaming at 256 KB (asymptotic) for
// both variants.
func BenchmarkFigure7Bandwidth(b *testing.B) {
	modes := []gm.Mode{gm.ModeGM, gm.ModeFTGM}
	var gmRate, ftRate float64
	for i := 0; i < b.N; i++ {
		// The two variants are independent simulations: measure them
		// concurrently, one cluster per worker.
		rates, err := parallel.Map(len(modes), 0, func(m int) (float64, error) {
			p, err := experiments.NewPair(experiments.PairOptions{Mode: modes[m]})
			if err != nil {
				return 0, err
			}
			return experiments.BidirectionalRate(p, 256*1024, 40), nil
		})
		if err != nil {
			b.Fatal(err)
		}
		gmRate, ftRate = rates[0], rates[1]
	}
	b.ReportMetric(gmRate, "GM-MB/s")
	b.ReportMetric(ftRate, "FTGM-MB/s")
}

// BenchmarkFigure8Latency reproduces Figure 8's short-message point: the
// half round trip at 16 bytes for both variants.
func BenchmarkFigure8Latency(b *testing.B) {
	modes := []gm.Mode{gm.ModeGM, gm.ModeFTGM}
	var gmLat, ftLat float64
	for i := 0; i < b.N; i++ {
		lats, err := parallel.Map(len(modes), 0, func(m int) (float64, error) {
			p, err := experiments.NewPair(experiments.PairOptions{Mode: modes[m]})
			if err != nil {
				return 0, err
			}
			return experiments.HalfRoundTrip(p, 16, 50).Micros(), nil
		})
		if err != nil {
			b.Fatal(err)
		}
		gmLat, ftLat = lats[0], lats[1]
	}
	b.ReportMetric(gmLat, "GM-us")
	b.ReportMetric(ftLat, "FTGM-us")
	b.ReportMetric(ftLat-gmLat, "overhead-us")
}

// BenchmarkTable2Metrics reproduces the Table 2 summary.
func BenchmarkTable2Metrics(b *testing.B) {
	var res experiments.Table2Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.GM.HostSendUs, "GM-hostsend-us")
	b.ReportMetric(res.FTGM.HostSendUs, "FTGM-hostsend-us")
	b.ReportMetric(res.GM.HostRecvUs, "GM-hostrecv-us")
	b.ReportMetric(res.FTGM.HostRecvUs, "FTGM-hostrecv-us")
	b.ReportMetric(res.GM.LanaiPerMsgUs, "GM-lanai-us")
	b.ReportMetric(res.FTGM.LanaiPerMsgUs, "FTGM-lanai-us")
}

// BenchmarkTable3Recovery reproduces the recovery-time breakdown.
func BenchmarkTable3Recovery(b *testing.B) {
	var res *experiments.Table3Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Table3(3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Detection.Mean().Micros(), "detect-us")
	b.ReportMetric(res.FTD.Mean().Micros(), "ftd-us")
	b.ReportMetric(res.PerProcess.Mean().Micros(), "perproc-us")
}

// BenchmarkFigure9Timeline reproduces the full-recovery timeline and
// reports the end-to-end time (the paper's "<2 sec" headline).
func BenchmarkFigure9Timeline(b *testing.B) {
	var totalMs float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(1)
		if err != nil {
			b.Fatal(err)
		}
		totalMs = res.Total.Mean().Millis()
	}
	b.ReportMetric(totalMs, "total-ms")
}

// BenchmarkRecoveryEffectiveness reproduces the §5.2 experiment: the
// campaign's hangs replayed against a live FTGM cluster.
func BenchmarkRecoveryEffectiveness(b *testing.B) {
	var res *experiments.EffectivenessResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Effectiveness(300, 3, 2003)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Detected), "detected")
	b.ReportMetric(float64(res.Recovered), "recovered")
	b.ReportMetric(float64(res.AuditFailed), "audit-violations")
}

// BenchmarkFigure4Scenario reproduces the duplicate-message crash window
// under both recovery schemes.
func BenchmarkFigure4Scenario(b *testing.B) {
	var naive, ftgm int
	for i := 0; i < b.N; i++ {
		r1, err := experiments.Figure4Scenario(gm.ModeGM)
		if err != nil {
			b.Fatal(err)
		}
		r2, err := experiments.Figure4Scenario(gm.ModeFTGM)
		if err != nil {
			b.Fatal(err)
		}
		naive, ftgm = r1.Deliveries, r2.Deliveries
	}
	b.ReportMetric(float64(naive), "naive-deliveries")
	b.ReportMetric(float64(ftgm), "ftgm-deliveries")
}

// BenchmarkFigure5Scenario reproduces the lost-message crash window under
// both recovery schemes.
func BenchmarkFigure5Scenario(b *testing.B) {
	var naive, ftgm int
	for i := 0; i < b.N; i++ {
		r1, err := experiments.Figure5Scenario(gm.ModeGM)
		if err != nil {
			b.Fatal(err)
		}
		r2, err := experiments.Figure5Scenario(gm.ModeFTGM)
		if err != nil {
			b.Fatal(err)
		}
		naive, ftgm = r1.Deliveries, r2.Deliveries
	}
	b.ReportMetric(float64(naive), "naive-deliveries")
	b.ReportMetric(float64(ftgm), "ftgm-deliveries")
}

// BenchmarkAblationDelayedACK measures the cost of the FTGM commit point.
func BenchmarkAblationDelayedACK(b *testing.B) {
	var res experiments.AblationDelayedACKResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.AblationDelayedACK(4096, 40)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.TurnaroundDelayedUs-res.TurnaroundImmediateUs, "turnaround-delta-us")
	b.ReportMetric(res.BandwidthDelayed, "delayed-MB/s")
	b.ReportMetric(res.BandwidthImmediate, "immediate-MB/s")
}

// BenchmarkAblationSeqStreams measures the rejected per-connection
// synchronization design.
func BenchmarkAblationSeqStreams(b *testing.B) {
	var res experiments.AblationSeqStreamsResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.AblationSeqStreams()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.PerConnectionSendUs-res.PerPortSendUs, "sync-cost-us")
}

// BenchmarkAblationShadowCopy isolates the §4.1 backup's housekeeping cost.
func BenchmarkAblationShadowCopy(b *testing.B) {
	var res experiments.AblationShadowCopyResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.AblationShadowCopy()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.WithCopySendUs-res.WithoutCopySendUs, "send-copy-us")
	b.ReportMetric(res.WithCopyRecvUs-res.WithoutCopyRecvUs, "recv-copy-us")
}

// BenchmarkRecoveryVsPorts measures the §5.2 port-count dependence: the
// per-process recovery time grows with the number of open ports.
func BenchmarkRecoveryVsPorts(b *testing.B) {
	var points []experiments.RecoveryVsPortsPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.RecoveryVsPorts([]int{1, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(points[0].PerProcessUs, "perproc-1port-us")
	b.ReportMetric(points[1].PerProcessUs, "perproc-4ports-us")
	b.ReportMetric(points[2].PerProcessUs, "perproc-8ports-us")
}

// BenchmarkAblationWatchdogInterval sweeps the IT1 interval.
func BenchmarkAblationWatchdogInterval(b *testing.B) {
	var points []experiments.AblationWatchdogPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.AblationWatchdog([]int{400, 1000, 4000})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(points[1].DetectionUs, "detect-at-1000us")
	b.ReportMetric(float64(points[0].FalseAlarms), "falsealarms-at-400us")
	b.ReportMetric(points[2].DetectionUs, "detect-at-4000us")
}

// BenchmarkAvailabilityMission runs the REE-style mission comparison:
// recurring hangs under no-recovery, naive restart, and FTGM.
func BenchmarkAvailabilityMission(b *testing.B) {
	var results []experiments.AvailabilityResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = experiments.AvailabilityComparison(experiments.AvailabilityConfig{
			Mission:        30 * gm.Second,
			FaultEvery:     8 * gm.Second,
			SendEvery:      2 * gm.Millisecond,
			NaiveDetection: 3 * gm.Second,
			TargetWindows:  true,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*results[0].Availability, "none-avail%")
	b.ReportMetric(100*results[1].Availability, "naive-avail%")
	b.ReportMetric(100*results[2].Availability, "ftgm-avail%")
	b.ReportMetric(float64(results[1].Duplicates+results[1].Losses), "naive-violations")
	b.ReportMetric(float64(results[2].Duplicates+results[2].Losses), "ftgm-violations")
}

// BenchmarkCheckpointBaseline quantifies the rejected whole-state
// checkpointing design against FTGM's continuous backup.
func BenchmarkCheckpointBaseline(b *testing.B) {
	var points []experiments.CheckpointPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.CheckpointBaseline(
			[]gm.Duration{50 * gm.Millisecond, 10 * gm.Millisecond},
			experiments.DefaultCheckpointConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(points[0].P99LatencyUs, "ftgm-p99-us")
	b.ReportMetric(points[2].P99LatencyUs, "ckpt10ms-p99-us")
	b.ReportMetric(100*points[2].PauseOverhead, "ckpt10ms-overhead%")
}

// BenchmarkTable1RecvSection runs the fault campaign against the receive
// path, the "other section of the code" the paper speculates about.
func BenchmarkTable1RecvSection(b *testing.B) {
	var last fault.CampaignResult
	for i := 0; i < b.N; i++ {
		c, err := fault.NewSectionCampaign(fault.SectionRecv, 2003)
		if err != nil {
			b.Fatal(err)
		}
		last = c.Run(1000)
	}
	b.ReportMetric(last.Percent(fault.OutcomeLocalHang), "hang%")
	b.ReportMetric(last.Percent(fault.OutcomeCorrupted), "corrupt%")
	b.ReportMetric(last.Percent(fault.OutcomeNoImpact), "noimpact%")
}
