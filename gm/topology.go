package gm

import (
	"fmt"

	"repro/internal/fabric"
)

// DualSwitch is a two-switch fabric with redundant trunks: the canonical
// topology for alternate-route failover experiments. Each trunk is a
// link-disjoint path between the switch halves, so killing any one trunk
// leaves every node pair connected.
type DualSwitch struct {
	// Nodes in creation order; even indices hang off S1, odd off S2.
	Nodes []*Node
	// S1 and S2 are the two crossbar switches.
	S1, S2 *Switch
	// Trunks are the inter-switch cables, highest switch ports first:
	// trunk t occupies port (NumPorts-1-t) on both switches.
	Trunks []*fabric.Link
}

// BuildDualSwitch assembles the topology on an empty cluster: two switches,
// the given number of trunks between them, and the given number of nodes
// dealt alternately across the switches. Call before Boot.
func BuildDualSwitch(c *Cluster, nodes, trunks int) (*DualSwitch, error) {
	if nodes < 2 || trunks < 1 {
		return nil, fmt.Errorf("%w: need >= 2 nodes and >= 1 trunk", ErrBadArgument)
	}
	d := &DualSwitch{
		S1: c.AddSwitch("s1"),
		S2: c.AddSwitch("s2"),
	}
	numPorts := d.S1.NumPorts()
	perSwitch := (nodes + 1) / 2
	if perSwitch+trunks > numPorts {
		return nil, fmt.Errorf("%w: %d nodes + %d trunks exceed %d-port switches",
			ErrBadArgument, nodes, trunks, numPorts)
	}
	for t := 0; t < trunks; t++ {
		p := numPorts - 1 - t
		l, err := c.ConnectSwitchesLink(d.S1, d.S2, p, p)
		if err != nil {
			return nil, err
		}
		d.Trunks = append(d.Trunks, l)
	}
	for i := 0; i < nodes; i++ {
		n := c.AddNode(fmt.Sprintf("n%d", i))
		sw := d.S1
		if i%2 == 1 {
			sw = d.S2
		}
		if err := c.Connect(n, sw, i/2); err != nil {
			return nil, err
		}
		d.Nodes = append(d.Nodes, n)
	}
	return d, nil
}
