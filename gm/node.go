package gm

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/gmproto"
	"repro/internal/host"
	"repro/internal/lanai"
	"repro/internal/mcp"
	"repro/internal/sim"
)

// Node is one cluster member: a host (CPU + PCI bus + pinned memory) with a
// LANai interface card running the control program, its device driver, and
// — in FTGM mode — the fault tolerance daemon standing guard.
type Node struct {
	cluster *Cluster
	name    string
	index   int
	// eng is the node's event domain: the whole host + NIC stack schedules
	// here. On a legacy (unsharded) cluster it is the cluster engine.
	eng *sim.Engine

	pci    *host.PCIBus
	chip   *lanai.Chip
	m      *mcp.MCP
	driver *core.Driver
	ftd    *core.FTD
	link   *fabric.Link

	cpu    host.CPUAccount
	rxAcks *core.RxAckTable

	ports map[PortID]*Port

	// unreachable marks peers the network watchdog declared dead: Send
	// rejects them synchronously (ErrPeerUnreachable) until readmission.
	unreachable map[NodeID]bool

	// dead marks a host that was killed (Kill): every library structure is
	// gone and the interface is down until Restore/Rejoin revives the slot.
	dead bool
	// reviveGen increments on every Kill; the deferred stages of a revive
	// carry the generation they started under and become inert if another
	// death lands while they are still in flight.
	reviveGen uint64

	// pendingRecoveries counts ports whose FAULT_DETECTED handler has not
	// finished yet; when it returns to zero the recovery timeline's
	// processes-done phase is marked.
	pendingRecoveries int
	// recoveryBusyUntil serializes the handlers on the single host CPU:
	// with several open ports, per-process recovery time grows with the
	// port count ("the rest of the recovery time depends on the number of
	// open ports at the time of failure", §5.2).
	recoveryBusyUntil sim.Time

	// pc drives periodic background checkpointing (gm periodic.go); nil
	// until StartPeriodicCheckpoint. ckptEpoch is the monotonic dirty-mark
	// epoch the port stamps compare against: it survives Start/Stop cycles
	// so stale marks from an earlier run never read dirty.
	pc        *periodicCkpt
	ckptEpoch uint64

	// Speculation journaling (gm spec.go).
	specMark   uint64
	specShadow nodeShadow

	// Recovered is invoked when every port of the node finished its
	// FAULT_DETECTED handler after a recovery.
	Recovered func()
}

func newNode(c *Cluster, eng *sim.Engine, name string, index int) *Node {
	n := &Node{
		cluster:     c,
		name:        name,
		index:       index,
		eng:         eng,
		rxAcks:      core.NewRxAckTable(),
		ports:       make(map[PortID]*Port),
		unreachable: make(map[NodeID]bool),
	}
	n.rxAcks.Bind(eng)
	n.pci = host.NewPCIBus(eng, name+"/pci", c.cfg.PCI)
	n.chip = lanai.New(eng, name+"/lanai", c.cfg.Lanai, n.pci)
	n.m = mcp.New(n.chip, c.cfg.MCP, c.cfg.Mode)
	n.m.SetUID(uint64(index + 1))
	n.driver = core.NewDriver(n.m, c.cfg.Driver)
	if c.cfg.Mode == ModeFTGM {
		n.ftd = core.NewFTD(n.driver, c.cfg.FTD)
	}
	return n
}

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// Engine returns the node's event domain (the cluster engine on an
// unsharded cluster). Traffic generators that drive a node directly — e.g.
// per-node tick loops in the scale harness — must schedule here, not on the
// control engine, so their events execute inside the node's domain.
func (n *Node) Engine() *sim.Engine { return n.eng }

// ID returns the node's mapper-assigned identity (valid after Boot).
func (n *Node) ID() NodeID { return n.m.NodeID() }

// CPU returns the host-CPU accounting of this node's process.
func (n *Node) CPU() *host.CPUAccount { return &n.cpu }

// PCI returns the node's PCI bus (for utilization metrics).
func (n *Node) PCI() *host.PCIBus { return n.pci }

// MCPStats returns the interface's protocol counters.
func (n *Node) MCPStats() mcp.Stats { return n.m.Stats() }

// ChipStats returns the interface's hardware counters.
func (n *Node) ChipStats() lanai.Stats { return n.chip.Stats() }

// FTD returns the node's fault tolerance daemon (nil in GM mode).
func (n *Node) FTD() *core.FTD { return n.ftd }

// Driver returns the node's device driver.
func (n *Node) Driver() *core.Driver { return n.driver }

// Hung reports whether the interface processor is hung.
func (n *Node) Hung() bool { return n.chip.Hung() }

// Running reports whether the interface processor is executing the MCP.
func (n *Node) Running() bool { return n.chip.Running() }

// SetLinkUp raises or cuts the node's cable (topology-change experiments).
func (n *Node) SetLinkUp(up bool) {
	if n.link != nil {
		n.link.SetUp(up)
	}
}

// Link returns the node's cable into the fabric (nil before Connect).
// Chaos schedulers use it to install fault profiles.
func (n *Node) Link() *fabric.Link { return n.link }

// LinkStats returns a snapshot of the node-to-switch direction's traffic
// counters (zero value before Connect).
func (n *Node) LinkStats() fabric.LinkStats {
	if n.link == nil {
		return fabric.LinkStats{}
	}
	return n.link.Stats(0)
}

// OpenPort opens a GM port on the node and returns its handle.
func (n *Node) OpenPort(id PortID) (*Port, error) {
	if !n.cluster.booted {
		return nil, ErrNotBooted
	}
	if n.dead {
		return nil, ErrNodeDead
	}
	if int(id) >= MaxPorts {
		return nil, fmt.Errorf("%w: port %d", ErrBadArgument, id)
	}
	if _, open := n.ports[id]; open {
		return nil, fmt.Errorf("%w: port %d already open", ErrBadArgument, id)
	}
	p := n.buildPort(id)
	if err := n.driver.OpenPort(id, p.mcpSink); err != nil {
		return nil, err
	}
	n.specTouch()
	n.ports[id] = p
	return p, nil
}

// buildPort constructs a Port and its deferred dispatchers without touching
// the driver or the node's port table (OpenPort and the checkpoint-restore
// path share it). Every dispatcher checks p.open: a host death (Kill) or an
// explicit close must leave whatever is still queued inert.
func (n *Node) buildPort(id PortID) *Port {
	p := &Port{
		node:       n,
		id:         id,
		shadow:     core.NewShadowStore(id),
		sendTokens: n.cluster.cfg.Host.SendTokens,
		callbacks:  make(map[uint64]SendCallback),
		open:       true,
	}
	p.shadow.Bind(n.eng)
	eng := n.eng
	p.tokPend = sim.NewDeferred(eng, "gmtok", func(tok gmproto.RecvToken) {
		if !p.open {
			return
		}
		_ = p.node.m.HostPostRecvToken(p.id, tok)
	})
	p.recvPend = sim.NewDeferred(eng, "gmrecv", func(d recvDispatch) {
		if !p.open {
			return
		}
		if d.poll {
			p.enqueuePoll(d.ev)
			return
		}
		if p.recvHandler != nil {
			p.recvHandler(RecvEvent{
				Data:    d.ev.Data,
				Src:     d.ev.Src,
				SrcPort: d.ev.SrcPort,
				Prio:    d.ev.Prio,
				Seq:     d.ev.Seq,
			})
		}
	})
	p.cbPend = sim.NewDeferred(eng, "gmcb", func(d cbDispatch) {
		if !p.open {
			return
		}
		d.cb(d.status)
	})
	p.postPend = sim.NewDeferred(eng, "gmpost", func(tok gmproto.SendToken) {
		if !p.open || p.recovering {
			// The FAULT_DETECTED handler will re-post the whole shadow
			// queue in sequence order; posting now would overtake the
			// restored messages. A closed port has nothing to post to.
			return
		}
		// If the interface is down the post fails; the shadow copy will be
		// restored to the reloaded LANai by the FAULT_DETECTED handler.
		_ = p.node.m.HostPostSend(tok)
	})
	return p
}

// ClosePort closes a port.
func (n *Node) ClosePort(id PortID) {
	if p, ok := n.ports[id]; ok {
		n.specTouch()
		p.specTouch()
		p.open = false
		if n.pc != nil && n.pc.s.active {
			n.pc.s.removedSince[id] = true
		}
		n.driver.ClosePort(id)
		delete(n.ports, id)
	}
}

// PeerUnreachable reports whether the network watchdog has declared a peer
// unreachable from this node.
func (n *Node) PeerUnreachable(peer NodeID) bool { return n.unreachable[peer] }

// setPeerUnreachable marks a peer dead: the MCP terminally fails every
// pending send toward it and rejects new ones; the library rejects sends at
// the API boundary.
func (n *Node) setPeerUnreachable(peer NodeID) {
	if peer == 0 || n.unreachable[peer] {
		return
	}
	n.specTouch()
	n.unreachable[peer] = true
	n.m.FailPeer(peer)
}

// resetPeer clears a peer's unreachable state and forgets the sequence
// streams between the two nodes in both directions (MCP streams, shadow
// sequence generators, receive ACK table): the peer's expulsion left gaps in
// the old streams, so first contact after readmission restarts at 1.
func (n *Node) resetPeer(peer NodeID) {
	if peer == 0 {
		return
	}
	n.specTouch()
	delete(n.unreachable, peer)
	n.m.ResetPeerStreams(peer)
	n.rxAcks.Forget(peer)
	for _, p := range n.ports {
		p.specTouch()
		p.markCkpt()
		p.shadow.ResetPeerSeqs(peer)
	}
}

// --- Fault injection (experiment entry points) ---

// InjectHang hangs the network processor now, recording the injection
// instant on the FTD timeline (FTGM mode).
func (n *Node) InjectHang() {
	if n.ftd != nil {
		n.ftd.MarkFault()
	}
	n.m.InjectHang()
}

// InjectHardHang hangs the processor *and* its timer/interrupt logic — the
// rare failure the watchdog cannot see (§4.2).
func (n *Node) InjectHardHang() {
	if n.ftd != nil {
		n.ftd.MarkFault()
	}
	n.m.InjectHardHang()
}

// InjectSendCorruption corrupts the next transmitted fragment (preSeal
// damage evades the CRC; post-seal damage is caught and retransmitted).
func (n *Node) InjectSendCorruption(bit int, preSeal bool) {
	n.m.InjectSendCorruption(bit, preSeal)
}

// InjectCheckpointPause models one round of classical whole-state
// checkpointing, the "crude way" §4 of the paper rejects: the network
// processor is occupied for nicBusy (quiescing and snapshotting its state)
// while pciBytes of interface + application state cross the PCI bus to
// stable storage. Message handling stalls behind the pause; the experiment
// harness uses this to quantify what the rejected design would cost.
func (n *Node) InjectCheckpointPause(nicBusy sim.Duration, pciBytes int) {
	n.chip.Exec(nicBusy, func() {})
	if pciBytes > 0 {
		n.pci.Transfer(pciBytes, nil)
	}
}

// NaiveRestart performs the baseline recovery of §3 (driver reload without
// state restoration), then — like a stock GM application would — re-posts
// the send tokens whose callbacks have not fired and re-provides the
// outstanding receive buffers. Sequence state is gone: the reloaded MCP
// renumbers from scratch, which is exactly what Figures 4 and 5 exploit.
func (n *Node) NaiveRestart(done func()) {
	n.driver.NaiveRestart(func() {
		for _, id := range n.driver.OpenPorts() {
			p := n.ports[id]
			if p == nil {
				continue
			}
			p.reRegisterRegions()
			for _, tok := range p.shadow.OutstandingRecvs() {
				_ = n.m.HostPostRecvToken(id, tok)
			}
			for _, tok := range p.shadow.OutstandingSends() {
				tok.HasSeq = false // the naive path has no sequence backup
				tok.Seq = 0
				_ = n.m.HostPostSend(tok)
			}
		}
		if done != nil {
			done()
		}
	})
}

// --- Event plumbing ---

// dispatchRecovery runs one port's FAULT_DETECTED handler: the §4.4
// sequence, with the Table 3 per-process cost. While the handler runs, the
// port's fresh sends accumulate in the shadow store only; everything is
// re-posted in sequence order when the port reopens.
func (n *Node) dispatchRecovery(p *Port) {
	cfg := n.cluster.cfg.Host
	n.specTouch()
	p.specTouch()
	n.cpu.SpecTouch(n.eng)
	n.pendingRecoveries++
	p.recovering = true
	nsend, nrecv := p.shadow.Counts()
	handlerCost := cfg.RecoveryHandlerBase +
		sim.Duration(nsend+nrecv)*cfg.RecoveryPerToken +
		cfg.RecoverySeqUpload + cfg.RecoveryReopen
	n.cpu.Charge(handlerCost)
	start := n.eng.Now()
	if n.recoveryBusyUntil > start {
		start = n.recoveryBusyUntil
	}
	end := start + handlerCost
	n.recoveryBusyUntil = end
	n.eng.At(end, func() {
		n.specTouch()
		p.specTouch()
		p.recovering = false
		// Re-pin the directed-send regions with the reloaded MCP.
		p.reRegisterRegions()
		// Restore the LANai's receive token queue from the backup copy:
		// "the LANai send and receive token queue is restored using the
		// process' backup copy" (§4.4).
		for _, tok := range p.shadow.OutstandingRecvs() {
			_ = n.m.HostPostRecvToken(p.id, tok)
		}
		// Update the LANai with the last sequence number received on each
		// stream so it ACKs/NACKs correctly (§4.4).
		n.m.RestoreRxSeqs(n.rxAcks.Snapshot())
		// Re-post unacknowledged sends — including any issued while the
		// handler ran — with their original host-generated sequence
		// numbers; the receiver discards any the fault window already
		// delivered.
		for _, tok := range p.shadow.OutstandingSends() {
			_ = n.m.HostPostSend(tok)
		}
		n.pendingRecoveries--
		if n.pendingRecoveries == 0 {
			if n.ftd != nil {
				n.ftd.SpecTouch()
				n.ftd.Timeline().Mark(core.PhaseProcessesDone, n.eng.Now())
			}
			if n.Recovered != nil {
				n.Recovered()
			}
		}
	})
}
