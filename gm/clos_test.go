package gm

import (
	"fmt"
	"testing"

	"repro/internal/fabric"
)

// walkRoute traces a generated route hop by hop through the cabled fabric
// graph (no simulation): it returns the sequence of switch tiers visited and
// fails the test if the route does not terminate exactly at dst with every
// route byte consumed.
func walkRoute(t *testing.T, tiers map[*fabric.Switch]int, nodes []*Node, src, dst int, route []byte) []int {
	t.Helper()
	at := nodes[src].link.EndFor(nodes[src].chip).Peer()
	var visited []int
	for {
		sw, ok := at.Device().(*fabric.Switch)
		if !ok {
			if at.Device() != fabric.Device(nodes[dst].chip) {
				t.Fatalf("route %d->%d landed on %s", src, dst, at.Device().Name())
			}
			if len(route) != 0 {
				t.Fatalf("route %d->%d reached dst with %d bytes left", src, dst, len(route))
			}
			return visited
		}
		tier, known := tiers[sw]
		if !known {
			t.Fatalf("route %d->%d crossed unknown switch %s", src, dst, sw.Name())
		}
		visited = append(visited, tier)
		if len(route) == 0 {
			t.Fatalf("route %d->%d exhausted at switch %s", src, dst, sw.Name())
		}
		in := sw.PortFor(at)
		if in < 0 {
			t.Fatalf("route %d->%d entered %s on an uncabled port", src, dst, sw.Name())
		}
		delta := int(int8(route[0]))
		route = route[1:]
		out := (in + delta%sw.NumPorts() + sw.NumPorts()) % sw.NumPorts()
		l := sw.PortLink(out)
		if l == nil {
			t.Fatalf("route %d->%d routed out empty port %d of %s", src, dst, out, sw.Name())
		}
		at = l.EndFor(sw).Peer()
	}
}

// checkUpDown asserts a visited tier sequence follows up*/down*: strictly
// non-decreasing then non-increasing, with no second climb (deadlock
// freedom for the route set).
func checkUpDown(t *testing.T, src, dst int, visited []int) {
	t.Helper()
	descending := false
	for i := 1; i < len(visited); i++ {
		if visited[i] > visited[i-1] {
			if descending {
				t.Fatalf("route %d->%d turns up after going down: tiers %v", src, dst, visited)
			}
		} else if visited[i] < visited[i-1] {
			descending = true
		} else {
			t.Fatalf("route %d->%d crosses two same-tier switches: %v", src, dst, visited)
		}
	}
}

func TestClosRoutesReachableAndUpDown(t *testing.T) {
	c := NewCluster(DefaultConfig(ModeFTGM))
	topo, err := BuildClos(c, 4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	tiers := make(map[*fabric.Switch]int)
	for _, s := range topo.Leaves {
		tiers[s.sw] = 0
	}
	for _, s := range topo.Spines {
		tiers[s.sw] = 1
	}
	n := len(topo.Nodes)
	spineUse := make(map[int]int)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			visited := walkRoute(t, tiers, topo.Nodes, src, dst, topo.Route(src, dst))
			checkUpDown(t, src, dst, visited)
			if len(visited) == 3 {
				spineUse[(src+dst)%len(topo.Spines)]++
			}
		}
	}
	if len(spineUse) != len(topo.Spines) {
		t.Fatalf("all-to-all routes use %d of %d spines", len(spineUse), len(topo.Spines))
	}
}

func TestFatTreeRoutesReachableAndUpDown(t *testing.T) {
	for _, k := range []int{2, 4, 6} {
		t.Run(fmt.Sprintf("k%d", k), func(t *testing.T) {
			c := NewCluster(DefaultConfig(ModeFTGM))
			topo, err := BuildFatTree(c, k)
			if err != nil {
				t.Fatal(err)
			}
			tiers := make(map[*fabric.Switch]int)
			for _, s := range topo.Edges {
				tiers[s.sw] = 0
			}
			for _, s := range topo.Aggs {
				tiers[s.sw] = 1
			}
			for _, s := range topo.Cores {
				tiers[s.sw] = 2
			}
			n := len(topo.Nodes)
			if n != k*k*k/4 {
				t.Fatalf("k=%d built %d hosts, want %d", k, n, k*k*k/4)
			}
			for src := 0; src < n; src++ {
				for dst := 0; dst < n; dst++ {
					if src == dst {
						continue
					}
					visited := walkRoute(t, tiers, topo.Nodes, src, dst, topo.Route(src, dst))
					checkUpDown(t, src, dst, visited)
				}
			}
		})
	}
}

// TestClosBootStaticDelivers boots a small Clos over generated routes (no
// mapper flood) and pushes one message across every src/dst pair, legacy and
// sharded.
func TestClosBootStaticDelivers(t *testing.T) {
	for _, shards := range []int{0, 2} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			cfg := DefaultConfig(ModeFTGM)
			cfg.Shards = shards
			c := NewCluster(cfg)
			topo, err := BuildClos(c, 2, 2, 2)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := topo.Boot(c); err != nil {
				t.Fatal(err)
			}
			n := len(topo.Nodes)
			got := make([]int, n)
			ports := make([]*Port, n)
			for i, node := range topo.Nodes {
				p, err := node.OpenPort(2)
				if err != nil {
					t.Fatal(err)
				}
				ports[i] = p
				i := i
				p.SetReceiveHandler(func(ev RecvEvent) {
					got[i]++
					_ = p.RecycleReceiveBuffer(ev.Data, ev.Prio)
				})
				for j := 0; j < 8; j++ {
					p.ProvideReceiveBuffer(256, PriorityLow)
				}
			}
			for src := range topo.Nodes {
				for dst := range topo.Nodes {
					if src == dst {
						continue
					}
					id := topo.Nodes[dst].ID()
					if err := ports[src].Send(id, 2, PriorityLow, make([]byte, 64), nil); err != nil {
						t.Fatalf("send %d->%d: %v", src, dst, err)
					}
				}
			}
			c.Run(5 * Millisecond)
			for i, g := range got {
				if g != n-1 {
					t.Fatalf("node %d received %d messages, want %d", i, g, n-1)
				}
			}
			c.Shutdown(Millisecond)
		})
	}
}
