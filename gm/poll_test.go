package gm

import (
	"bytes"
	"testing"

	"repro/internal/gmproto"
)

func TestPollingReceive(t *testing.T) {
	cl, a, b := twoNodes(t, ModeFTGM)
	pa, _ := a.OpenPort(1)
	pb, _ := b.OpenPort(1)
	pb.EnablePolling()
	if !pb.Polling() {
		t.Fatal("Polling() = false")
	}
	if err := pb.ProvideReceiveBuffer(64, PriorityLow); err != nil {
		t.Fatal(err)
	}
	if err := pa.Send(b.ID(), 1, PriorityLow, []byte("polled"), nil); err != nil {
		t.Fatal(err)
	}
	cl.Run(2 * Millisecond)
	if pb.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", pb.Pending())
	}
	ev, ok := pb.Receive()
	if !ok || ev.Type != gmproto.EvReceived {
		t.Fatalf("Receive = %+v, %v", ev, ok)
	}
	if !bytes.Equal(ev.Data, []byte("polled")) {
		t.Errorf("data = %q", ev.Data)
	}
	if _, ok := pb.Receive(); ok {
		t.Error("empty queue returned an event")
	}
}

func TestPollingReceiveOnCallbackPortEmpty(t *testing.T) {
	cl, a, b := twoNodes(t, ModeFTGM)
	pa, _ := a.OpenPort(1)
	pb, _ := b.OpenPort(1)
	pb.SetReceiveHandler(func(ev RecvEvent) {})
	if err := pb.ProvideReceiveBuffer(64, PriorityLow); err != nil {
		t.Fatal(err)
	}
	if err := pa.Send(b.ID(), 1, PriorityLow, []byte("x"), nil); err != nil {
		t.Fatal(err)
	}
	cl.Run(2 * Millisecond)
	if _, ok := pb.Receive(); ok {
		t.Error("Receive returned events on a handler-mode port")
	}
}

func TestPollingFigure3ControlFlow(t *testing.T) {
	// The paper's Figure 3 loop, verbatim: poll, handle RECEIVED, pass
	// everything else to Unknown — and fault recovery rides the Unknown
	// path without the application knowing.
	cfg := DefaultConfig(ModeFTGM)
	cfg.Host.SendTokens = 512
	cl, a, b := twoNodesCfg(t, cfg)
	pa, _ := a.OpenPort(1)
	pb, _ := b.OpenPort(1)
	pa.EnablePolling() // the *sender* polls; FAULT_DETECTED arrives there
	var delivered [][]byte
	pb.SetReceiveHandler(func(ev RecvEvent) {
		delivered = append(delivered, append([]byte(nil), ev.Data...))
		_ = pb.ProvideReceiveBuffer(64, PriorityLow)
	})
	for i := 0; i < 16; i++ {
		if err := pb.ProvideReceiveBuffer(64, PriorityLow); err != nil {
			t.Fatal(err)
		}
	}

	// The application: a classic GM main loop, polling every 100 µs.
	var loop func()
	loop = func() {
		for {
			ev, ok := pa.Receive()
			if !ok {
				break
			}
			switch ev.Type {
			case gmproto.EvReceived:
				// not expected on this side
			default:
				pa.UnknownEvent(ev) // gm_unknown()
			}
		}
		cl.After(100*Microsecond, loop)
	}
	loop()

	const total = 30
	sent := 0
	var pump func()
	pump = func() {
		if sent >= total {
			return
		}
		sent++
		if err := pa.Send(b.ID(), 1, PriorityLow, []byte{byte(sent)}, nil); err != nil {
			t.Fatal(err)
		}
		cl.After(200*Microsecond, pump)
	}
	pump()
	cl.After(2*Millisecond, func() { a.InjectHang() })
	cl.Run(15 * Second)

	if len(delivered) != total {
		t.Fatalf("delivered %d/%d through the polled recovery", len(delivered), total)
	}
	if pa.Stats().Recoveries != 1 {
		t.Errorf("recoveries = %d", pa.Stats().Recoveries)
	}
}

func TestPollingRecoveryWaitsForPoll(t *testing.T) {
	// In polling mode, FAULT_DETECTED sits in the queue until the process
	// polls: recovery genuinely requires the application's cooperation
	// (§4.4), even though it never has to understand the event.
	cl, a, _ := twoNodes(t, ModeFTGM)
	pa, _ := a.OpenPort(1)
	pa.EnablePolling()
	a.InjectHang()
	cl.Run(5 * Second) // detection + FTD finish; the event waits
	if pa.Pending() != 1 {
		t.Fatalf("Pending = %d, want the queued FAULT_DETECTED", pa.Pending())
	}
	if pa.Stats().Recoveries != 0 {
		t.Fatal("recovery ran before the application polled")
	}
	ev, ok := pa.Receive()
	if !ok || ev.Type != gmproto.EvFaultDetected {
		t.Fatalf("ev = %+v", ev)
	}
	pa.UnknownEvent(ev)
	cl.Run(3 * Second)
	if pa.Stats().Recoveries != 1 {
		t.Fatal("Unknown did not run the recovery")
	}
}

func TestPollingAlarm(t *testing.T) {
	cl, a, _ := twoNodes(t, ModeFTGM)
	pa, _ := a.OpenPort(1)
	pa.EnablePolling()
	pa.SetAlarm(cl.Now() + 2*Millisecond)
	cl.Run(5 * Millisecond)
	ev, ok := pa.Receive()
	if !ok || ev.Type != gmproto.EvAlarm {
		t.Fatalf("ev = %+v, ok = %v", ev, ok)
	}
	// Alarms are app events; Unknown must also accept them harmlessly.
	pa.UnknownEvent(ev)
}
