package gm

import (
	"errors"
	"sort"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/gmproto"
	"repro/internal/sim"
)

// Host-failure tolerance: endpoint checkpoint/restart.
//
// The paper's continuous backup (§4.1) keeps the recovery anchor — shadow
// token queues, host-generated sequence streams, the per-stream ACK table —
// in host memory, where it survives an interface hang. This file extends the
// same anchor across host death: Checkpoint serializes it through the
// internal/ckpt wire codec at a drained instant, Kill models the host (and
// with it the interface) dying, and Restore stands a replacement process up
// on the same slot, replaying the §4.4 restoration sequence against a
// freshly loaded MCP. Rejoin is the post-expulsion variant: identity and
// routes come from the checkpoint, but the inter-peer protocol state starts
// over, matching the stream resets the peers performed when they expelled
// the node (DESIGN.md §15).

// Host-fault errors.
var (
	// ErrNotDrained means the endpoint has committed work still in flight
	// toward the application; checkpointing now could lose an acknowledged
	// message. Retry after the deferred dispatchers and poll queues drain.
	ErrNotDrained = errors.New("gm: node not drained")
	// ErrNodeDead rejects library calls against a killed host.
	ErrNodeDead = errors.New("gm: node is dead")
	// ErrNodeAlive rejects Restore/Rejoin on a host that was never killed.
	ErrNodeAlive = errors.New("gm: node is alive")
	// ErrCheckpointMismatch means the checkpoint belongs to a different node
	// slot (interface UID disagreement).
	ErrCheckpointMismatch = errors.New("gm: checkpoint does not match this node slot")
)

// Dead reports whether the host has been killed and not yet revived.
func (n *Node) Dead() bool { return n.dead }

// Drained reports whether the endpoint sits at a message boundary: no
// deferred dispatcher of any open port holds work, no polling-mode receive
// queue holds undelivered events, and no recovery handler is mid-flight.
// The condition matters because of the delayed ACK (§4.1): the MCP releases
// a message's ACK only after the host tables commit, and the windows where
// a committed-and-ACKed message has not yet reached the application are the
// port's deferred receive dispatch and — on a polling port — the receive
// queue the application has not yet drained with Receive. With every
// dispatcher and poll queue empty, everything the node has acknowledged has
// also been delivered; whatever is still inside the MCP is unacknowledged
// and the senders' Go-Back-N windows re-deliver it after a restore.
func (n *Node) Drained() bool {
	if n.dead || n.pendingRecoveries > 0 {
		return false
	}
	for _, p := range n.ports {
		if p.recovering || len(p.pollQueue) > 0 ||
			p.tokPend.Pending() > 0 || p.recvPend.Pending() > 0 ||
			p.cbPend.Pending() > 0 || p.postPend.Pending() > 0 {
			return false
		}
	}
	return true
}

// Checkpoint assembles the node's recovery anchor at a drained instant:
// interface identity, the authoritative route table, the receive ACK table,
// and per open port the token cursor, the outstanding shadow send/receive
// tokens in posting order, the sequence-stream cursors and the registered
// directed-send regions (geometry and contents: an acknowledged deposit
// lives only in the region buffer, so the bytes are part of the anchor).
// The result is deterministic (sections sorted) and serializes through
// ckpt.Encode into the versioned wire form the restore side decodes.
// Refuses with ErrNotDrained while committed work is still in flight to
// the application.
func (n *Node) Checkpoint() (*ckpt.Checkpoint, error) {
	if n.dead {
		return nil, ErrNodeDead
	}
	if !n.Drained() {
		return nil, ErrNotDrained
	}
	c := &ckpt.Checkpoint{UID: n.m.UID(), NodeID: n.m.NodeID()}

	routes := n.driver.Routes()
	ids := make([]NodeID, 0, len(routes))
	for id := range routes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		c.Routes = append(c.Routes, ckpt.Route{Node: id, Hops: append([]byte(nil), routes[id]...)})
	}

	acks := n.rxAcks.Snapshot()
	streams := make([]gmproto.StreamID, 0, len(acks))
	for id := range acks {
		streams = append(streams, id)
	}
	sort.Slice(streams, func(i, j int) bool {
		a, b := streams[i], streams[j]
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Port != b.Port {
			return a.Port < b.Port
		}
		return a.Prio < b.Prio
	})
	for _, id := range streams {
		c.RxAcks = append(c.RxAcks, ckpt.RxAck{Stream: id, Seq: acks[id]})
	}

	for id := PortID(0); int(id) < MaxPorts; id++ {
		p, ok := n.ports[id]
		if !ok || !p.open {
			continue
		}
		pc := ckpt.PortCheckpoint{
			Port:       id,
			NextToken:  p.nextToken,
			NextRegion: p.nextRegion,
			SendTokens: p.shadow.OutstandingSends(),
			SeqStreams: p.shadow.SeqStreams(),
		}
		for _, rt := range p.shadow.OutstandingRecvs() {
			pc.RecvTokens = append(pc.RecvTokens, ckpt.RecvTokenCheckpoint{
				ID: rt.ID, Size: rt.Size, Prio: rt.Prio, BufLen: uint32(len(rt.Buf)),
			})
		}
		for _, r := range p.regions {
			pc.Regions = append(pc.Regions, ckpt.RegionCheckpoint{
				ID: r.ID, Data: append([]byte(nil), r.Buf...),
			})
		}
		c.Ports = append(c.Ports, pc)
	}
	return c, nil
}

// Kill models host death: the machine powers off, taking the interface —
// processor, timers, interrupt logic — down with it, and every library
// structure (ports, handlers, callbacks, shadow copies, ACK tables)
// vanishes. Peers see silence, not a FATAL; their Go-Back-N windows hold
// the unacknowledged traffic until the slot is revived. Idempotent.
func (n *Node) Kill() {
	if n.dead {
		return
	}
	n.specTouch()
	n.dead = true
	n.reviveGen++
	// Host death takes the periodic checkpointer with it: its scheduled
	// events go inert (generation mismatch) and the chain ends here. The
	// frozen-port state dies with the MCP's port table below.
	if n.pc != nil && n.pc.s.active {
		n.pc.s.active = false
		n.pc.s.emitting = false
	}
	n.m.InjectHardHang()
	for id, p := range n.ports {
		p.specTouch()
		p.open = false
		p.recvHandler, p.alarmHandler, p.eventHandler = nil, nil, nil
		p.callbacks = nil
		p.pollQueue = nil
		n.driver.ClosePort(id)
	}
	n.ports = make(map[PortID]*Port)
	n.rxAcks = core.NewRxAckTable()
	n.rxAcks.Bind(n.eng)
	n.unreachable = make(map[NodeID]bool)
	n.pendingRecoveries = 0
	n.recoveryBusyUntil = 0
	n.eng.Tracef("node", "%s host killed", n.name)
}

// Restore revives a killed slot from a checkpoint with full state
// reinstatement: the replacement host reloads the MCP, reinstalls identity
// and routes from the checkpoint (its own memory starts empty), rebuilds
// each port's shadow store, token cursor, sequence streams and directed-send
// regions (contents included), and replays the §4.4 order — reopen,
// reattach, upload receive sequence table, re-post outstanding receive then
// send tokens with their original sequence numbers. Peers that kept their
// stream state dedup anything the fault window already delivered, so
// delivery stays exactly-once and in-order.
//
// reattach runs as soon as the restored ports exist and before any token is
// re-posted: the replacement process installs its receive handlers there
// (handler closures do not survive host death). The same applies to send
// completion callbacks: a checkpointed outstanding send is re-posted and
// completes, but its pre-death callback closure is gone and nothing fires
// unless the reattach hook re-arms one via Port.SetSendCompletion (the ids
// come from Port.OutstandingSendIDs). Applications that pace their pipeline
// on completions must re-arm or they will stall after a restore. done fires
// when the restore completes. Restore must land before the control plane
// expels the node; after an expulsion use Rejoin.
func (n *Node) Restore(c *ckpt.Checkpoint, reattach func(ports map[PortID]*Port), done func()) error {
	return n.revive(c, false, reattach, done)
}

// Rejoin revives a killed slot after the cluster expelled it: identity,
// routes and port shape come from the checkpoint, but the inter-peer
// protocol state — sequence streams, receive ACK table, outstanding sends —
// starts over. The peers forgot both stream directions when they expelled
// the node, so a symmetric restart at sequence 1 is the only consistent
// revival: reinstating the old cursors would wedge every stream (the peers
// NACK unknown high sequences and dup-drop restarted low ones). The
// checkpointed outstanding sends are disowned, exactly as the auditor's
// ExcuseSource contract expects of a dead sender.
func (n *Node) Rejoin(c *ckpt.Checkpoint, reattach func(ports map[PortID]*Port), done func()) error {
	return n.revive(c, true, reattach, done)
}

func (n *Node) revive(c *ckpt.Checkpoint, fresh bool, reattach func(ports map[PortID]*Port), done func()) error {
	if !n.dead {
		return ErrNodeAlive
	}
	if c == nil || c.UID != n.m.UID() {
		return ErrCheckpointMismatch
	}
	routes := make(map[NodeID][]byte, len(c.Routes))
	for _, r := range c.Routes {
		routes[r.Node] = append([]byte(nil), r.Hops...)
	}
	n.specTouch()
	n.driver.SetRoutes(c.NodeID, routes)
	n.dead = false
	gen := n.reviveGen
	n.eng.Tracef("node", "%s host revive begins (fresh=%v)", n.name, fresh)
	n.chip.Reset()
	n.chip.ClearSRAM()
	n.driver.LoadMCP(func() {
		if n.dead || n.reviveGen != gen {
			return // another death landed while the MCP was loading
		}
		n.specTouch()
		n.cpu.SpecTouch(n.eng)
		cfg := n.cluster.cfg.Host
		n.m.UploadRoutes(n.driver.Routes())
		n.m.RegisterPageTable(n.driver.PageTable().Len())
		n.rxAcks = core.NewRxAckTable()
		n.rxAcks.Bind(n.eng)
		if !fresh {
			for _, a := range c.RxAcks {
				n.rxAcks.Update(a.Stream, a.Seq)
			}
		}
		restored := make(map[PortID]*Port, len(c.Ports))
		var handlerCost sim.Duration
		for _, pc := range c.Ports {
			p := n.buildPort(pc.Port)
			p.nextToken = pc.NextToken
			p.nextRegion = pc.NextRegion
			if !fresh {
				for _, tok := range pc.SendTokens {
					p.shadow.AddSendToken(tok)
				}
				for _, ss := range pc.SeqStreams {
					p.shadow.RestoreSeq(ss.Node, ss.Prio, ss.Last)
				}
				p.sendTokens -= len(pc.SendTokens)
			}
			for _, rt := range pc.RecvTokens {
				p.shadow.AddRecvToken(gmproto.RecvToken{
					ID: rt.ID, Size: rt.Size, Prio: rt.Prio, Buf: make([]byte, rt.BufLen),
				})
			}
			if err := n.driver.OpenPort(pc.Port, p.mcpSink); err != nil {
				n.eng.Tracef("node", "%s revive: reopen port %d: %v", n.name, pc.Port, err)
				continue
			}
			// Re-register the directed-send regions with the reloaded MCP
			// before peers' Go-Back-N windows retransmit into them: an
			// unregistered region would NACK the retransmissions forever.
			// Restore reinstates the checkpointed contents (acknowledged
			// deposits exist only here); Rejoin keeps the geometry — region
			// ids are application-level rendezvous — but zeroes the bytes,
			// consistent with disowning the rest of the protocol state.
			for _, rc := range pc.Regions {
				r := &Region{ID: rc.ID, Buf: make([]byte, len(rc.Data))}
				if !fresh {
					copy(r.Buf, rc.Data)
				}
				if err := n.m.HostRegisterRegion(p.id, r.ID, r.Buf); err != nil {
					n.eng.Tracef("node", "%s revive: region %d on port %d: %v", n.name, rc.ID, pc.Port, err)
					continue
				}
				n.driver.PageTable().SpecTouch(n.eng)
				_ = n.driver.PageTable().PinRange(int(p.id), uint64(r.ID)<<32, uint64(len(r.Buf)))
				p.regions = append(p.regions, r)
			}
			n.ports[pc.Port] = p
			restored[pc.Port] = p
			nsend, nrecv := p.shadow.Counts()
			handlerCost += cfg.RecoveryHandlerBase +
				sim.Duration(nsend+nrecv)*cfg.RecoveryPerToken +
				cfg.RecoverySeqUpload + cfg.RecoveryReopen
		}
		// The replacement process attaches its handlers before any token is
		// re-posted: a retransmission landing between reopen and re-post is
		// NACKed for lack of a receive token, never committed unseen.
		if reattach != nil {
			reattach(restored)
		}
		n.cpu.Charge(handlerCost)
		n.eng.After(handlerCost, func() {
			if n.dead || n.reviveGen != gen {
				return // killed again inside the handler window
			}
			n.m.RestoreRxSeqs(n.rxAcks.Snapshot())
			for _, pc := range c.Ports {
				p := n.ports[pc.Port]
				if p == nil || !p.open {
					continue
				}
				for _, tok := range p.shadow.OutstandingRecvs() {
					_ = n.m.HostPostRecvToken(p.id, tok)
				}
				for _, tok := range p.shadow.OutstandingSends() {
					_ = n.m.HostPostSend(tok)
				}
			}
			n.driver.ClearFatal()
			n.eng.Tracef("node", "%s host revive complete", n.name)
			if done != nil {
				done()
			}
		})
	})
	return nil
}
