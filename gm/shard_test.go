package gm

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/fabric"
)

// fastRecoveryConfig shrinks the FTD/recovery constants so a hang-and-
// recover cycle fits in a few virtual milliseconds: the invariance trials
// replay the whole fault pipeline several times and only the schedule —
// not the paper-calibrated durations — matters here.
func fastRecoveryConfig(mode Mode, shards int) Config {
	cfg := DefaultConfig(mode)
	cfg.Shards = shards
	cfg.Seed = 42
	cfg.Driver.MCPLoadTime = 2 * Millisecond
	cfg.Host.RecoveryHandlerBase = Millisecond
	cfg.Host.RecoverySeqUpload = 100 * Microsecond
	cfg.Host.RecoveryReopen = 100 * Microsecond
	cfg.FTD.UnmapIO = 200 * Microsecond
	cfg.FTD.CardReset = Millisecond
	cfg.FTD.ClearSRAM = 500 * Microsecond
	cfg.FTD.RestorePageTable = Millisecond
	cfg.FTD.RestoreRoutes = 500 * Microsecond
	return cfg
}

// runChaosShardTrial runs a chaos-style trial — all-to-all traffic driven
// from per-node domains on a sharded Clos, a lossy cable, one processor
// hang with full FTGM recovery — and returns a byte-exact fingerprint: the
// full trace plus every end-of-run counter. The fingerprint must be
// invariant in the shard count.
func runChaosShardTrial(t *testing.T, shards int) string {
	t.Helper()
	cfg := fastRecoveryConfig(ModeFTGM, shards)
	c := NewCluster(cfg)
	topo, err := BuildClos(c, 2, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	c.EnableTrace(&trace)
	if _, err := topo.Boot(c); err != nil {
		t.Fatal(err)
	}
	n := len(topo.Nodes)
	recv := make([]int, n)
	sent := make([]int, n)
	rejected := make([]int, n)
	recovered := 0
	topo.Nodes[2].Recovered = func() { recovered++ }
	ports := make([]*Port, n)
	for i, node := range topo.Nodes {
		p, err := node.OpenPort(2)
		if err != nil {
			t.Fatal(err)
		}
		ports[i] = p
		i := i
		p.SetReceiveHandler(func(ev RecvEvent) {
			recv[i]++
			_ = p.RecycleReceiveBuffer(ev.Data, ev.Prio)
		})
		for j := 0; j < 16; j++ {
			if err := p.ProvideReceiveBuffer(512, PriorityLow); err != nil {
				t.Fatal(err)
			}
		}
	}
	// A lossy cable on node 1 exercises Go-Back-N under sharding.
	topo.Nodes[1].Link().SetFaults(fabric.FaultProfile{DropProb: 0.05}, 7)

	stopAt := c.Now() + 12*Millisecond
	payload := make([]byte, 256)
	for i, node := range topo.Nodes {
		i := i
		eng := node.Engine()
		peer := (i + 1) % n
		var tick func()
		tick = func() {
			if eng.Now() >= stopAt {
				return
			}
			if peer == i {
				peer = (peer + 1) % n
			}
			if err := ports[i].Send(topo.Nodes[peer].ID(), 2, PriorityLow, payload, nil); err != nil {
				rejected[i]++
			} else {
				sent[i]++
			}
			peer = (peer + 1) % n
			eng.After(10*Microsecond, tick)
		}
		eng.After(Duration(i+1)*500*Nanosecond, tick)
	}
	// Mid-run: hang node 2's processor; the FTD detects and recovers it
	// while its peers keep retransmitting into the outage.
	c.After(3*Millisecond, func() { topo.Nodes[2].InjectHang() })
	c.RunUntil(stopAt + 10*Millisecond)
	c.Shutdown(Millisecond)
	if recovered == 0 {
		t.Fatal("chaos trial never completed FTGM recovery on the hung node")
	}

	var sum bytes.Buffer
	fmt.Fprintf(&sum, "events=%d now=%d recovered=%d\n", c.Engine().ExecutedAll(), c.Now(), recovered)
	for i, node := range topo.Nodes {
		fmt.Fprintf(&sum, "node%d sent=%d rejected=%d recv=%d mcp=%+v chip=%+v link=%+v/%+v\n",
			i, sent[i], rejected[i], recv[i], node.MCPStats(), node.ChipStats(),
			node.Link().Stats(0), node.Link().Stats(1))
	}
	return trace.String() + sum.String()
}

// runNetFaultShardTrial runs a netfault-style trial — dual-switch fabric,
// network watchdog enabled, a trunk cut mid-run forcing suspicion, an
// autonomous remap (the real mapper's scout flood) and failover — sharded,
// and returns the byte-exact fingerprint.
func runNetFaultShardTrial(t *testing.T, shards int) string {
	t.Helper()
	cfg := fastRecoveryConfig(ModeFTGM, shards)
	cfg.NetWatch.Enabled = true
	c := NewCluster(cfg)
	d, err := BuildDualSwitch(c, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	c.EnableTrace(&trace)
	if _, err := c.Boot(); err != nil {
		t.Fatal(err)
	}
	n := len(d.Nodes)
	recv := make([]int, n)
	sent := make([]int, n)
	rejected := make([]int, n)
	ports := make([]*Port, n)
	for i, node := range d.Nodes {
		p, err := node.OpenPort(2)
		if err != nil {
			t.Fatal(err)
		}
		ports[i] = p
		i := i
		p.SetReceiveHandler(func(ev RecvEvent) {
			recv[i]++
			_ = p.RecycleReceiveBuffer(ev.Data, ev.Prio)
		})
		for j := 0; j < 16; j++ {
			if err := p.ProvideReceiveBuffer(512, PriorityLow); err != nil {
				t.Fatal(err)
			}
		}
	}
	stopAt := c.Now() + 15*Millisecond
	payload := make([]byte, 128)
	for i, node := range d.Nodes {
		i := i
		eng := node.Engine()
		peer := (i + 1) % n
		var tick func()
		tick = func() {
			if eng.Now() >= stopAt {
				return
			}
			if peer == i {
				peer = (peer + 1) % n
			}
			if err := ports[i].Send(d.Nodes[peer].ID(), 2, PriorityLow, payload, nil); err != nil {
				rejected[i]++
			} else {
				sent[i]++
			}
			peer = (peer + 1) % n
			eng.After(5*Microsecond, tick)
		}
		eng.After(Duration(i+1)*Microsecond, tick)
	}
	// Cut the trunk node 0's cross-switch route actually rides (decoded
	// from the mapper's installed route, like the netfault suite does):
	// traffic on it blackholes until the watchdog suspects the peers,
	// remaps with the real mapper and fails over to the surviving trunk.
	cut := routeTrunk(t, d, d.Nodes[0], d.Nodes[1].ID())
	c.After(4*Millisecond, func() { cut.SetUp(false) })
	c.RunUntil(stopAt + 5*Second)
	c.Shutdown(Millisecond)
	nwStats := c.NetWatch().Stats()
	if nwStats.Suspicions == 0 || nwStats.Remaps == 0 {
		t.Fatalf("netfault trial never exercised the watchdog: %+v", nwStats)
	}

	var sum bytes.Buffer
	fmt.Fprintf(&sum, "events=%d now=%d\n", c.Engine().ExecutedAll(), c.Now())
	fmt.Fprintf(&sum, "netwatch=%+v\n", nwStats)
	for i, node := range d.Nodes {
		fmt.Fprintf(&sum, "node%d sent=%d rejected=%d recv=%d mcp=%+v\n",
			i, sent[i], rejected[i], recv[i], node.MCPStats())
	}
	return trace.String() + sum.String()
}

// diffFingerprints points at the first divergent line, which beats staring
// at two multi-hundred-KB blobs.
func diffFingerprints(t *testing.T, name, a, b string) {
	t.Helper()
	if a == b {
		return
	}
	la := bytes.Split([]byte(a), []byte("\n"))
	lb := bytes.Split([]byte(b), []byte("\n"))
	for i := 0; i < len(la) && i < len(lb); i++ {
		if !bytes.Equal(la[i], lb[i]) {
			t.Fatalf("%s: fingerprints diverge at line %d:\n  serial:  %s\n  sharded: %s",
				name, i+1, la[i], lb[i])
		}
	}
	t.Fatalf("%s: fingerprints diverge in length: %d vs %d lines", name, len(la), len(lb))
}

// TestShardInvarianceChaos: SetShards(1) vs SetShards(N) must be
// bit-for-bit identical on a chaos-style trial (lossy cable + processor
// hang + FTGM recovery), traces included.
func TestShardInvarianceChaos(t *testing.T) {
	serial := runChaosShardTrial(t, 1)
	if len(serial) == 0 {
		t.Fatal("empty fingerprint")
	}
	for _, shards := range []int{2, 4, 8} {
		diffFingerprints(t, fmt.Sprintf("shards=%d", shards), serial, runChaosShardTrial(t, shards))
	}
}

// TestShardInvarianceNetFault: same contract on a netfault-style trial
// (trunk cut, watchdog suspicion, autonomous remap via the real mapper,
// failover).
func TestShardInvarianceNetFault(t *testing.T) {
	serial := runNetFaultShardTrial(t, 1)
	if len(serial) == 0 {
		t.Fatal("empty fingerprint")
	}
	for _, shards := range []int{3, 6} {
		diffFingerprints(t, fmt.Sprintf("shards=%d", shards), serial, runNetFaultShardTrial(t, shards))
	}
}

// TestShardedMatchesScheduleShape sanity-checks domain bookkeeping: a
// sharded Clos cluster carves one domain per node and switch plus the
// control domain.
func TestShardedMatchesScheduleShape(t *testing.T) {
	cfg := DefaultConfig(ModeFTGM)
	cfg.Shards = 4
	c := NewCluster(cfg)
	topo, err := BuildClos(c, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + len(topo.Nodes) + len(topo.Leaves) + len(topo.Spines)
	if got := c.Engine().Domains(); got != want {
		t.Fatalf("Domains() = %d, want %d", got, want)
	}
	if !c.Sharded() {
		t.Fatal("Sharded() = false")
	}
	for i, n := range topo.Nodes {
		if n.Engine() == c.Engine() {
			t.Fatalf("node %d shares the control engine", i)
		}
		if n.Engine().DomainIndex() == 0 {
			t.Fatalf("node %d has control domain index", i)
		}
	}
}
