package gm

import (
	"fmt"

	"repro/internal/gmproto"
)

// Region is a registered directed-send target: pinned process memory that
// remote ports may deposit into without consuming receive tokens (GM's
// gm_directed_send facility). The application communicates the region id
// and layout to peers itself (GM likewise leaves rendezvous to the user).
type Region struct {
	ID  uint32
	Buf []byte
}

// RegisterMemory pins size bytes for directed sends and registers them with
// the interface. Deposits appear in the returned Region's Buf; the mapping
// survives fault recovery (the library re-registers it with the reloaded
// MCP before restoring tokens).
func (p *Port) RegisterMemory(size uint32) (*Region, error) {
	if !p.open {
		return nil, ErrPortClosed
	}
	if size == 0 {
		return nil, fmt.Errorf("%w: zero-size region", ErrBadArgument)
	}
	p.specTouch()
	p.node.cpu.SpecTouch(p.node.eng)
	p.nextRegion++
	r := &Region{ID: p.nextRegion, Buf: make([]byte, size)}
	if err := p.node.m.HostRegisterRegion(p.id, r.ID, r.Buf); err != nil {
		return nil, err
	}
	p.node.driver.PageTable().SpecTouch(p.node.eng)
	if err := p.node.driver.PageTable().PinRange(int(p.id), uint64(r.ID)<<32, uint64(size)); err != nil {
		return nil, err
	}
	p.regions = append(p.regions, r)
	p.markNewRegion()
	p.node.cpu.Charge(p.node.cluster.cfg.Host.ProvideOverhead)
	return r, nil
}

// DirectedSend deposits data into a remote port's registered region at the
// given offset, consuming a send token. The receiver's process is not
// notified; the sender's callback fires when the deposit is acknowledged —
// under FTGM, only after the bytes are in the remote host's memory. The
// reliable-stream machinery (sequence numbers, Go-Back-N, the shadow
// backup and transparent recovery) covers directed sends exactly as it
// covers ordinary ones.
func (p *Port) DirectedSend(dest NodeID, destPort PortID, regionID, remoteOffset uint32, data []byte, cb SendCallback) error {
	if !p.open {
		return ErrPortClosed
	}
	if p.sendTokens <= 0 {
		return ErrNoSendTokens
	}
	p.specTouch()
	p.markCkpt()
	p.node.cpu.SpecTouch(p.node.eng)
	p.sendTokens--
	p.nextToken++
	tok := gmproto.SendToken{
		ID:           p.nextToken,
		Dest:         dest,
		DestPort:     destPort,
		SrcPort:      p.id,
		Prio:         gmproto.PriorityLow,
		Data:         data,
		Directed:     true,
		RegionID:     regionID,
		RemoteOffset: remoteOffset,
	}
	cfg := p.node.cluster.cfg.Host
	cost := cfg.SendOverhead
	if p.node.cluster.cfg.Mode == ModeFTGM {
		cost += cfg.FTGMSendExtra
		if cfg.PerConnectionSeqSync {
			// Directed sends share the per-(port, dest) sequence space, so
			// the §4.1 ablation's synchronization cost applies to them too
			// (and keeps postPend's due times nondecreasing when directed
			// and ordinary sends interleave).
			cost += cfg.SeqSyncOverhead
		}
		tok.Seq = p.shadow.NextSeq(dest, gmproto.PriorityLow)
		tok.HasSeq = true
	}
	p.shadow.AddSendToken(tok)
	if cb != nil {
		p.callbacks[tok.ID] = cb
	}
	p.node.cpu.ChargeSend(cost)
	p.stats.Sends++
	// Post through the shared dispatcher, exactly like Send: its dispatch
	// checks p.open (a Kill leaves the queued post inert) and p.recovering,
	// and Node.Drained() counts it — a checkpoint cannot be cut with a
	// directed post still in flight toward the MCP.
	p.postPend.After(cost, tok)
	return nil
}

// Regions returns the port's registered directed-send regions in
// registration order. After a Restore the reattach hook uses it to find the
// rebuilt regions: pointers handed out before the host death do not survive
// it.
func (p *Port) Regions() []*Region { return p.regions }

// reRegisterRegions re-pins every registered region with a freshly loaded
// MCP (recovery and naive-restart paths).
func (p *Port) reRegisterRegions() {
	for _, r := range p.regions {
		_ = p.node.m.HostRegisterRegion(p.id, r.ID, r.Buf)
	}
}
