package gm

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// bootDualSwitch builds and boots a dual-switch FTGM cluster, with or
// without the network watchdog.
func bootDualSwitch(t *testing.T, nodes, trunks int, watch bool) (*Cluster, *DualSwitch) {
	t.Helper()
	cfg := DefaultConfig(ModeFTGM)
	cfg.NetWatch.Enabled = watch
	c := NewCluster(cfg)
	d, err := BuildDualSwitch(c, nodes, trunks)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Boot(); err != nil {
		t.Fatal(err)
	}
	return c, d
}

// openPair opens port 2 on src and dst, with dst counting deliveries and
// checking exactly-once-in-order per source.
func openPair(t *testing.T, src, dst *Node) (ps *Port, delivered *int) {
	t.Helper()
	ps, err := src.OpenPort(2)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := dst.OpenPort(2)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	seen := make(map[string]bool)
	pd.SetReceiveHandler(func(ev RecvEvent) {
		key := string(ev.Data)
		if seen[key] {
			t.Errorf("duplicate delivery of %q", key)
		}
		seen[key] = true
		count++
	})
	for i := 0; i < 64; i++ {
		if err := pd.ProvideReceiveBuffer(256, PriorityLow); err != nil {
			t.Fatal(err)
		}
	}
	return ps, &count
}

// routeTrunk finds which trunk of the dual-switch topology carries src's
// route to dst (src must hang off S1 at port < trunk ports).
func routeTrunk(t *testing.T, d *DualSwitch, src *Node, dst NodeID) *fabric.Link {
	t.Helper()
	route := src.Driver().Routes()[dst]
	if len(route) == 0 {
		t.Fatalf("no route from %s to node %d", src.Name(), dst)
	}
	// src sits on S1 port 0; exit port = (0 + delta) mod NumPorts.
	n := d.S1.NumPorts()
	exit := ((int(int8(route[0])) % n) + n) % n
	idx := n - 1 - exit
	if idx < 0 || idx >= len(d.Trunks) {
		t.Fatalf("route %v exits port %d, not a trunk", route, exit)
	}
	return d.Trunks[idx]
}

// TestNetFaultTrunkFailover is the tentpole scenario: a dead trunk on a
// dual-trunk fabric. With the watchdog, the stalled streams raise
// NET_FAULT_SUSPECTED, the watchdog remaps, the mapper finds the surviving
// trunk, and every message — including the ones in flight at the kill — is
// delivered exactly once. Nothing is lost, nothing duplicated.
func TestNetFaultTrunkFailover(t *testing.T) {
	c, d := bootDualSwitch(t, 4, 2, true)
	src, dst := d.Nodes[0], d.Nodes[1] // cross-switch pair
	ps, delivered := openPair(t, src, dst)

	statuses := make(map[SendStatus]int)
	send := func(msg string) {
		if err := ps.Send(dst.ID(), 2, PriorityLow, []byte(msg), func(st SendStatus) {
			statuses[st]++
		}); err != nil {
			t.Fatalf("send %q: %v", msg, err)
		}
	}

	for _, m := range []string{"a0", "a1", "a2", "a3", "a4"} {
		send(m)
	}
	c.Run(50 * Millisecond)
	if *delivered != 5 {
		t.Fatalf("pre-fault: delivered %d/5", *delivered)
	}

	// Kill the trunk the route actually rides.
	routeTrunk(t, d, src, dst.ID()).SetUp(false)
	for _, m := range []string{"b0", "b1", "b2", "b3", "b4"} {
		send(m)
	}
	c.Run(5 * sim.Second)

	if *delivered != 10 {
		t.Fatalf("post-failover: delivered %d/10", *delivered)
	}
	if statuses[SendOK] != 10 || len(statuses) != 1 {
		t.Fatalf("send statuses = %v, want 10x ok", statuses)
	}
	st := c.NetWatch().Stats()
	if st.Suspicions == 0 || st.Remaps == 0 {
		t.Fatalf("netwatch stats = %+v, want suspicions and a remap", st)
	}
	if st.Unreachable != 0 {
		t.Fatalf("netwatch declared %d peers unreachable on a survivable fault", st.Unreachable)
	}
	if src.Driver().Stats().NetFaultReports == 0 {
		t.Fatal("driver forwarded no NET_FAULT_SUSPECTED reports")
	}
	// Identities must not have moved across the remap.
	for i, n := range d.Nodes {
		if n.ID() != NodeID(i+1) {
			t.Fatalf("node %d identity moved to %d after remap", i, n.ID())
		}
	}
}

// TestNetFaultTrunkStallWithoutWatchdog is the contrast: same dead trunk,
// watchdog disabled — plain FTGM retransmits into the void forever and the
// post-kill messages never arrive.
func TestNetFaultTrunkStallWithoutWatchdog(t *testing.T) {
	c, d := bootDualSwitch(t, 4, 2, false)
	src, dst := d.Nodes[0], d.Nodes[1]
	ps, delivered := openPair(t, src, dst)

	ok := 0
	if err := ps.Send(dst.ID(), 2, PriorityLow, []byte("pre"), func(SendStatus) { ok++ }); err != nil {
		t.Fatal(err)
	}
	c.Run(50 * Millisecond)

	routeTrunk(t, d, src, dst.ID()).SetUp(false)
	if err := ps.Send(dst.ID(), 2, PriorityLow, []byte("post"), func(SendStatus) { ok++ }); err != nil {
		t.Fatal(err)
	}
	c.Run(5 * sim.Second)

	if *delivered != 1 {
		t.Fatalf("delivered %d, want 1 (the post-kill message must stall)", *delivered)
	}
	if ok != 1 {
		t.Fatalf("%d send callbacks fired, want 1", ok)
	}
	if s := src.MCPStats(); s.NetFaultSuspicions == 0 {
		t.Fatal("MCP raised no suspicions (detection should run even without the daemon)")
	}
}

// TestNetFaultPartitionUnreachable is the graceful-degradation scenario: one
// node's cable dies with no alternate path. After the grace period the
// watchdog expels it — pending sends complete with SendErrorUnreachable, new
// sends are rejected with ErrPeerUnreachable, and traffic to every other
// peer is unaffected. When the cable comes back, a readmission probe remaps
// and traffic to the peer flows again.
func TestNetFaultPartitionUnreachable(t *testing.T) {
	c, d := bootDualSwitch(t, 4, 2, true)
	src, victim, other := d.Nodes[0], d.Nodes[3], d.Nodes[1]
	psVictim, deliveredVictim := openPair(t, src, victim)
	psOther, err := src.OpenPort(3)
	if err != nil {
		t.Fatal(err)
	}
	pOther, err := other.OpenPort(3)
	if err != nil {
		t.Fatal(err)
	}
	otherCount := 0
	pOther.SetReceiveHandler(func(RecvEvent) { otherCount++ })
	for i := 0; i < 64; i++ {
		if err := pOther.ProvideReceiveBuffer(256, PriorityLow); err != nil {
			t.Fatal(err)
		}
	}

	victimStatuses := make(map[SendStatus]int)
	sendVictim := func() error {
		return psVictim.Send(victim.ID(), 2, PriorityLow, []byte{byte(victimStatuses[SendOK])},
			func(st SendStatus) { victimStatuses[st]++ })
	}
	if err := sendVictim(); err != nil {
		t.Fatal(err)
	}
	c.Run(50 * Millisecond)
	if *deliveredVictim != 1 {
		t.Fatalf("pre-fault: delivered %d/1 to victim", *deliveredVictim)
	}

	// Partition the victim; one send is posted into the partition.
	victim.SetLinkUp(false)
	if err := sendVictim(); err != nil {
		t.Fatal(err)
	}
	// Keep unrelated traffic flowing throughout.
	sentOther := 0
	for i := 0; i < 10; i++ {
		i := i
		c.After(Duration(i)*sim.Second, func() {
			sentOther++
			if err := psOther.Send(other.ID(), 3, PriorityLow, []byte{byte(i)}, nil); err != nil {
				t.Errorf("send to healthy peer during partition: %v", err)
			}
		})
	}
	c.Run(10 * sim.Second)

	if got := victimStatuses[SendErrorUnreachable]; got != 1 {
		t.Fatalf("victim statuses = %v, want 1 unreachable", victimStatuses)
	}
	if !src.PeerUnreachable(victim.ID()) {
		t.Fatal("src does not see victim as unreachable")
	}
	if err := sendVictim(); err != ErrPeerUnreachable {
		t.Fatalf("send to expelled peer: err = %v, want ErrPeerUnreachable", err)
	}
	if otherCount != sentOther {
		t.Fatalf("healthy-peer traffic: %d/%d delivered during partition", otherCount, sentOther)
	}
	st := c.NetWatch().Stats()
	if st.Unreachable != 1 {
		t.Fatalf("netwatch stats = %+v, want exactly 1 unreachable verdict", st)
	}

	// The cable comes back; a readmission probe must remap and readmit.
	victim.SetLinkUp(true)
	c.Run(8 * sim.Second)
	if src.PeerUnreachable(victim.ID()) {
		t.Fatal("victim still marked unreachable after repair")
	}
	if st := c.NetWatch().Stats(); st.Readmissions != 1 {
		t.Fatalf("netwatch stats = %+v, want 1 readmission", st)
	}
	if err := sendVictim(); err != nil {
		t.Fatalf("send after readmission: %v", err)
	}
	c.Run(100 * Millisecond)
	if *deliveredVictim != 2 {
		t.Fatalf("post-readmission: delivered %d/2 to victim", *deliveredVictim)
	}
	if victimStatuses[SendOK] != 2 {
		t.Fatalf("victim statuses = %v, want 2 ok", victimStatuses)
	}
}
