package gm

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gmproto"
	"repro/internal/sim"
)

// SendCallback reports the outcome of a send; invoking it returns the send
// token to the process (§3.1: "a send token is implicitly passed back to
// the process when its callback function is called").
type SendCallback func(status SendStatus)

// RecvEvent is a delivered message.
type RecvEvent struct {
	Data    []byte
	Src     NodeID
	SrcPort PortID
	Prio    Priority
	Seq     uint32
}

// RecvHandler consumes delivered messages.
type RecvHandler func(ev RecvEvent)

// Event is a port-level event the application may observe through the
// generic handler path (alarms, buffer starvation). FAULT_DETECTED never
// reaches the application: the library's Unknown path consumes it (§4.4).
type Event struct {
	Type    gmproto.EventType
	Src     NodeID
	SrcPort PortID
}

// PortStats counts library-level port activity.
type PortStats struct {
	Sends      uint64
	SendErrors uint64
	Receives   uint64
	Recoveries uint64
}

// Port is a GM communication endpoint. All methods must be called from
// simulation callbacks (the library is single-threaded in virtual time,
// like a GM process polling its receive queue).
type Port struct {
	node *Node
	id   PortID
	open bool

	// shadow is the §4.1 backup: copies of every token in the LANai's
	// possession plus the host-generated sequence streams.
	shadow     *core.ShadowStore
	sendTokens int
	nextToken  uint64
	callbacks  map[uint64]SendCallback

	recvHandler  RecvHandler
	alarmHandler func()
	eventHandler func(Event)

	// polling-mode state (EnablePolling/Receive, the gm_receive() style).
	polling   bool
	pollQueue []gmproto.Event

	// recovering holds application sends in the shadow store while the
	// FAULT_DETECTED handler runs; the handler re-posts everything in
	// sequence order when it reopens the port (§4.4).
	recovering bool

	// registered directed-send regions (re-pinned after recovery).
	regions    []*Region
	nextRegion uint32

	// Deferred dispatchers for the per-message host-overhead delays (token
	// post, receive delivery, send callback). Each overhead is a constant,
	// so due times are nondecreasing and one pending engine event per
	// dispatcher replaces a closure-carrying event per message.
	tokPend  *sim.Deferred[gmproto.RecvToken]
	recvPend *sim.Deferred[recvDispatch]
	cbPend   *sim.Deferred[cbDispatch]
	postPend *sim.Deferred[gmproto.SendToken]

	stats PortStats

	// Periodic-checkpoint dirty bits (gm periodic.go): epoch stamps in the
	// SpecTouch first-touch style. ckptMark == node.ckptEpoch means the
	// port's checkpointable state changed this interval; regionMarks
	// parallels regions and stamps directed-deposit targets.
	ckptMark    uint64
	regionMarks []uint64

	// Speculation journaling (gm spec.go).
	specMark   uint64
	specShadow portShadow
}

// recvDispatch is one committed delivery waiting out the host receive
// overhead. poll is latched at commit time, as the inline dispatch did.
type recvDispatch struct {
	ev   gmproto.Event
	poll bool
}

// cbDispatch is one send callback waiting out its host overhead share.
type cbDispatch struct {
	cb     SendCallback
	status SendStatus
}

// ID returns the port number.
func (p *Port) ID() PortID { return p.id }

// Node returns the owning node.
func (p *Port) Node() *Node { return p.node }

// Stats returns the port's counters.
func (p *Port) Stats() PortStats { return p.stats }

// SendTokensAvailable reports the process's remaining send tokens.
func (p *Port) SendTokensAvailable() int { return p.sendTokens }

// SetReceiveHandler installs the message consumer.
func (p *Port) SetReceiveHandler(fn RecvHandler) { p.recvHandler = fn }

// SetAlarmHandler installs the gm_set_alarm() callback.
func (p *Port) SetAlarmHandler(fn func()) { p.alarmHandler = fn }

// SetEventHandler installs an observer for non-message events.
func (p *Port) SetEventHandler(fn func(Event)) { p.eventHandler = fn }

// SetAlarm asks the interface to post an alarm at virtual time t.
func (p *Port) SetAlarm(t Time) { p.node.m.HostSetAlarm(p.id, t) }

// OutstandingSendIDs returns the token ids of the port's unacknowledged
// sends in posting order. After a Restore these are the checkpointed sends
// whose completion callbacks did not survive host death; the reattach hook
// pairs it with SetSendCompletion to re-arm them.
func (p *Port) OutstandingSendIDs() []uint64 {
	toks := p.shadow.OutstandingSends()
	ids := make([]uint64, len(toks))
	for i, t := range toks {
		ids[i] = t.ID
	}
	return ids
}

// SetSendCompletion installs a completion callback for an outstanding send
// token. Callback closures do not survive host death, so a restored port's
// re-posted sends would otherwise complete silently; the reattach hook
// re-arms pacing callbacks here before any token is re-posted. Replaces an
// existing callback for the token; errors if the token is not outstanding.
func (p *Port) SetSendCompletion(tokenID uint64, cb SendCallback) error {
	if !p.open {
		return ErrPortClosed
	}
	for _, t := range p.shadow.OutstandingSends() {
		if t.ID == tokenID {
			p.specTouch()
			p.callbacks[tokenID] = cb
			return nil
		}
	}
	return fmt.Errorf("%w: send token %d not outstanding", ErrBadArgument, tokenID)
}

// Send transmits data to (dest, destPort) with a completion callback,
// consuming a send token. In FTGM mode the library backs up the token and
// stamps it with the next host-generated sequence number of the (port,
// dest) stream before handing it to the LANai (§4.1). The data slice is
// captured, not copied: it models the pinned send buffer, which the
// process must not touch until the callback fires.
func (p *Port) Send(dest NodeID, destPort PortID, prio Priority, data []byte, cb SendCallback) error {
	if !p.open {
		return ErrPortClosed
	}
	if !prio.Valid() {
		return fmt.Errorf("%w: priority %d", ErrBadArgument, prio)
	}
	if p.node.unreachable[dest] {
		return ErrPeerUnreachable
	}
	if p.sendTokens <= 0 {
		return ErrNoSendTokens
	}
	p.specTouch()
	p.markCkpt()
	p.node.cpu.SpecTouch(p.node.eng)
	p.sendTokens--
	p.nextToken++
	tok := gmproto.SendToken{
		ID:       p.nextToken,
		Dest:     dest,
		DestPort: destPort,
		SrcPort:  p.id,
		Prio:     prio,
		Data:     data,
	}
	cfg := p.node.cluster.cfg.Host
	cost := cfg.SendOverhead
	if p.node.cluster.cfg.Mode == ModeFTGM {
		// The backup copy and the sequence stamp are the send-side
		// housekeeping the paper prices at ~0.25 µs (§5.1).
		cost += cfg.FTGMSendExtra
		if cfg.PerConnectionSeqSync {
			// Ablation: per-connection sequence spaces force processes
			// sharing a connection to synchronize (§4.1's rejected design).
			cost += cfg.SeqSyncOverhead
		}
		tok.Seq = p.shadow.NextSeq(dest, prio)
		tok.HasSeq = true
	}
	p.shadow.AddSendToken(tok)
	if cb != nil {
		p.callbacks[tok.ID] = cb
	}
	p.node.cpu.ChargeSend(cost)
	p.stats.Sends++
	p.postPend.After(cost, tok)
	return nil
}

// ProvideReceiveBuffer gives the interface a freshly allocated receive
// buffer of the given size and priority, relinquishing a receive token
// (§3.1). The LANai deposits message bytes directly into the buffer; the
// slice delivered in RecvEvent.Data is the buffer itself, which the
// application may hand back with RecycleReceiveBuffer once consumed.
func (p *Port) ProvideReceiveBuffer(size uint32, prio Priority) error {
	if !p.open {
		return ErrPortClosed
	}
	if !prio.Valid() || size == 0 {
		return fmt.Errorf("%w: size %d prio %d", ErrBadArgument, size, prio)
	}
	p.postRecvToken(gmproto.RecvToken{Size: size, Prio: prio, Buf: make([]byte, size)})
	return nil
}

// RecycleReceiveBuffer re-provides a delivered message's buffer (a
// RecvEvent.Data slice) as a receive buffer of its full original capacity —
// the steady-state receive loop then runs without allocating. The caller
// must be done with the bytes: the next message overwrites them.
func (p *Port) RecycleReceiveBuffer(buf []byte, prio Priority) error {
	if !p.open {
		return ErrPortClosed
	}
	size := uint32(cap(buf))
	if !prio.Valid() || size == 0 {
		return fmt.Errorf("%w: size %d prio %d", ErrBadArgument, size, prio)
	}
	p.postRecvToken(gmproto.RecvToken{Size: size, Prio: prio, Buf: buf[:size]})
	return nil
}

func (p *Port) postRecvToken(tok gmproto.RecvToken) {
	p.specTouch()
	p.markCkpt()
	p.node.cpu.SpecTouch(p.node.eng)
	p.nextToken++
	tok.ID = p.nextToken
	p.shadow.AddRecvToken(tok)
	cost := p.node.cluster.cfg.Host.ProvideOverhead
	p.node.cpu.Charge(cost)
	p.tokPend.After(cost, tok)
}

// mcpSink receives events from the LANai's receive queue. It performs the
// library bookkeeping at commit time (shadow/ACK-table updates), then
// dispatches to the application after the host receive overhead.
func (p *Port) mcpSink(ev gmproto.Event) {
	cfg := p.node.cluster.cfg.Host
	p.specTouch()
	p.node.cpu.SpecTouch(p.node.eng)
	switch ev.Type {
	case gmproto.EvReceived:
		// Commit-time bookkeeping: the event carries the sequence number
		// of the message just ACKed so the host can keep its per-stream
		// ACK table current (§4.1). The recv-token shadow copy is deleted
		// now, too.
		if p.node.cluster.cfg.Mode == ModeFTGM {
			p.node.rxAcks.Update(gmproto.StreamID{Node: ev.Src, Port: ev.SrcPort, Prio: ev.Prio}, ev.Seq)
		}
		p.markCkpt()
		p.shadow.RemoveRecvToken(ev.TokenID)
		cost := cfg.RecvOverhead
		if p.node.cluster.cfg.Mode == ModeFTGM {
			// "...the receiver has to update two hash tables for every
			// receive" (§5.1): ~0.4 µs extra.
			cost += cfg.FTGMRecvExtra
		}
		p.node.cpu.ChargeRecv(cost)
		p.stats.Receives++
		p.recvPend.After(cost, recvDispatch{ev: ev, poll: p.polling})
	case gmproto.EvDirectedDeposit:
		// A directed deposit committed: no receive token was consumed and
		// the application is never notified (GM semantics), but the §4.1
		// ACK table must record the sequence number — the deposit is part
		// of the checkpointable recovery anchor, and a restored MCP seeded
		// without it would NACK the stream's retransmissions forever. The
		// record is consumed here; it never reaches handlers or the poll
		// queue.
		if p.node.cluster.cfg.Mode == ModeFTGM {
			p.node.rxAcks.Update(gmproto.StreamID{Node: ev.Src, Port: ev.SrcPort, Prio: ev.Prio}, ev.Seq)
			p.node.cpu.Charge(cfg.FTGMRecvExtra)
		}
		p.markRegion(ev.RegionID)
	case gmproto.EvSent, gmproto.EvSendError:
		// The send token comes back: drop the shadow copy just before the
		// callback runs (§4.1).
		p.markCkpt()
		p.shadow.RemoveSendToken(ev.TokenID)
		p.sendTokens++
		cb := p.callbacks[ev.TokenID]
		delete(p.callbacks, ev.TokenID)
		if ev.Type == gmproto.EvSendError {
			p.stats.SendErrors++
		}
		if cb != nil {
			p.node.cpu.Charge(cfg.SendOverhead / 2)
			p.cbPend.After(cfg.SendOverhead/2, cbDispatch{cb: cb, status: ev.Status})
		}
	default:
		if p.polling {
			// Internal events wait in the receive queue until the process
			// polls — including FAULT_DETECTED, whose handling begins only
			// when the application's gm_receive() loop passes it to
			// Unknown (§4.4: "the asynchronous nature of communication in
			// GM requires a user process to occasionally poll the receive
			// queue").
			p.enqueuePoll(ev)
			return
		}
		p.Unknown(ev)
	}
}

// Unknown is the gm_unknown() path: events the application does not handle
// are passed here and handled "in a default manner" (§3.1). Recovery
// transparency lives here: the FAULT_DETECTED event triggers the §4.4
// handler sequence without the application ever seeing it.
func (p *Port) Unknown(ev gmproto.Event) {
	switch ev.Type {
	case gmproto.EvFaultDetected:
		p.specTouch()
		p.stats.Recoveries++
		p.node.dispatchRecovery(p)
	case gmproto.EvAlarm:
		if p.alarmHandler != nil {
			p.alarmHandler()
		}
	case gmproto.EvNoRecvBuffer:
		if p.eventHandler != nil {
			p.eventHandler(Event{Type: ev.Type, Src: ev.Src, SrcPort: ev.SrcPort})
		}
	default:
		if p.eventHandler != nil {
			p.eventHandler(Event{Type: ev.Type, Src: ev.Src, SrcPort: ev.SrcPort})
		}
	}
}
