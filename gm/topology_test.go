package gm

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// buildTwoSwitch boots a 2-switch cluster with half the nodes on each side.
func buildTwoSwitch(t *testing.T, mode Mode, nodesPerSide int) (*Cluster, []*Node) {
	t.Helper()
	cfg := DefaultConfig(mode)
	cfg.Host.SendTokens = 256
	cl := NewCluster(cfg)
	s1 := cl.AddSwitch("s1")
	s2 := cl.AddSwitch("s2")
	if err := cl.ConnectSwitches(s1, s2, 7, 7); err != nil {
		t.Fatal(err)
	}
	var nodes []*Node
	for i := 0; i < 2*nodesPerSide; i++ {
		n := cl.AddNode(fmt.Sprintf("n%d", i))
		sw, port := s1, i
		if i >= nodesPerSide {
			sw, port = s2, i-nodesPerSide
		}
		if err := cl.Connect(n, sw, port); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	if _, err := cl.Boot(); err != nil {
		t.Fatal(err)
	}
	return cl, nodes
}

func TestTwoSwitchMessaging(t *testing.T) {
	cl, nodes := buildTwoSwitch(t, ModeFTGM, 2)
	// Cross-trunk exchange between one node on each side.
	pa, _ := nodes[0].OpenPort(1)
	pb, _ := nodes[2].OpenPort(1)
	var got []byte
	pb.SetReceiveHandler(func(ev RecvEvent) { got = ev.Data })
	if err := pb.ProvideReceiveBuffer(64, PriorityLow); err != nil {
		t.Fatal(err)
	}
	if err := pa.Send(nodes[2].ID(), 1, PriorityLow, []byte("cross-trunk"), nil); err != nil {
		t.Fatal(err)
	}
	cl.Run(5 * Millisecond)
	if !bytes.Equal(got, []byte("cross-trunk")) {
		t.Fatalf("got %q", got)
	}
}

// measureFlow streams count messages of size bytes from src to dst and
// returns the delivered data rate in MB/s.
func measureFlow(t *testing.T, cl *Cluster, src, dst *Node, port PortID, size, count int) func() float64 {
	t.Helper()
	ps, err := src.OpenPort(port)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := dst.OpenPort(port)
	if err != nil {
		t.Fatal(err)
	}
	var first, last Time
	delivered := 0
	pd.SetReceiveHandler(func(ev RecvEvent) {
		if delivered == 0 {
			first = cl.Now()
		}
		delivered++
		last = cl.Now()
		_ = pd.ProvideReceiveBuffer(uint32(size), PriorityLow)
	})
	for i := 0; i < 16; i++ {
		if err := pd.ProvideReceiveBuffer(uint32(size), PriorityLow); err != nil {
			t.Fatal(err)
		}
	}
	payload := make([]byte, size)
	posted := 0
	var post func()
	post = func() {
		for posted < count {
			err := ps.Send(dst.ID(), port, PriorityLow, payload, func(SendStatus) { post() })
			if err == ErrNoSendTokens {
				return
			}
			if err != nil {
				t.Fatalf("send: %v", err)
			}
			posted++
		}
	}
	cl.After(0, post)
	return func() float64 {
		if delivered < count {
			t.Fatalf("flow delivered %d/%d", delivered, count)
		}
		span := last - first
		if span <= 0 {
			return 0
		}
		return float64(size*(delivered-1)) / span.Seconds() / 1e6
	}
}

func TestTrunkSharingFairness(t *testing.T) {
	// Two unidirectional flows cross the same trunk: together they cannot
	// exceed the trunk's 250 MB/s, and neither starves.
	cl, nodes := buildTwoSwitch(t, ModeGM, 2)
	f1 := measureFlow(t, cl, nodes[0], nodes[2], 1, 65536, 60)
	f2 := measureFlow(t, cl, nodes[1], nodes[3], 2, 65536, 60)
	cl.Run(2 * Second)
	r1, r2 := f1(), f2()
	sum := r1 + r2
	if sum > 255 {
		t.Errorf("aggregate trunk throughput %.1f MB/s exceeds the 250 MB/s link", sum)
	}
	if sum < 150 {
		t.Errorf("aggregate trunk throughput %.1f MB/s — trunk badly underutilized", sum)
	}
	ratio := r1 / r2
	if ratio < 0.6 || ratio > 1.7 {
		t.Errorf("unfair trunk sharing: %.1f vs %.1f MB/s", r1, r2)
	}
}

func TestSingleFlowNotTrunkLimited(t *testing.T) {
	// One flow alone across the trunk: the PCI bus (~186 MB/s
	// unidirectional), not the 250 MB/s trunk, is the bottleneck.
	cl, nodes := buildTwoSwitch(t, ModeGM, 2)
	f := measureFlow(t, cl, nodes[0], nodes[2], 1, 65536, 60)
	cl.Run(2 * Second)
	r := f()
	if r < 140 || r > 200 {
		t.Errorf("single cross-trunk flow = %.1f MB/s, want PCI-bound ~170-190", r)
	}
}

func TestClusterTrace(t *testing.T) {
	var buf strings.Builder
	cl, a, _ := twoNodes(t, ModeFTGM)
	cl.EnableTrace(&buf)
	a.InjectHang()
	cl.Run(5 * Second)
	out := buf.String()
	for _, want := range []string{"processor hung", "card reset"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q", want)
		}
	}
	cl.EnableTrace(nil)
	n := len(buf.String())
	a.InjectHang()
	cl.Run(5 * Second)
	if len(buf.String()) != n {
		t.Error("trace still active after disable")
	}
}
