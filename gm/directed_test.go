package gm

import (
	"bytes"
	"testing"
)

func TestDirectedSendBasic(t *testing.T) {
	for _, mode := range []Mode{ModeGM, ModeFTGM} {
		t.Run(mode.String(), func(t *testing.T) {
			cl, a, b := twoNodes(t, mode)
			pa, _ := a.OpenPort(1)
			pb, _ := b.OpenPort(1)
			region, err := pb.RegisterMemory(4096)
			if err != nil {
				t.Fatal(err)
			}
			received := 0
			pb.SetReceiveHandler(func(ev RecvEvent) { received++ })

			data := []byte("deposited without a receive token")
			acked := false
			if err := pa.DirectedSend(b.ID(), 1, region.ID, 128, data, func(s SendStatus) {
				acked = s == SendOK
			}); err != nil {
				t.Fatal(err)
			}
			cl.Run(5 * Millisecond)
			if !acked {
				t.Fatal("directed send not acknowledged")
			}
			if !bytes.Equal(region.Buf[128:128+len(data)], data) {
				t.Fatalf("deposit missing: %q", region.Buf[128:128+len(data)])
			}
			// GM semantics: the receiving process is never notified.
			if received != 0 {
				t.Errorf("receiver got %d events, want 0", received)
			}
			if b.MCPStats().DirectedDeposits != 1 {
				t.Errorf("DirectedDeposits = %d", b.MCPStats().DirectedDeposits)
			}
		})
	}
}

func TestDirectedSendMultiFragment(t *testing.T) {
	cl, a, b := twoNodes(t, ModeFTGM)
	pa, _ := a.OpenPort(1)
	pb, _ := b.OpenPort(1)
	region, err := pb.RegisterMemory(64 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 3*4096+77)
	for i := range data {
		data[i] = byte(i * 31)
	}
	done := false
	if err := pa.DirectedSend(b.ID(), 1, region.ID, 4096, data, func(SendStatus) { done = true }); err != nil {
		t.Fatal(err)
	}
	cl.Run(10 * Millisecond)
	if !done {
		t.Fatal("multi-fragment directed send not acknowledged")
	}
	if !bytes.Equal(region.Buf[4096:4096+len(data)], data) {
		t.Fatal("multi-fragment deposit corrupted")
	}
}

func TestDirectedSendOutOfBoundsDropped(t *testing.T) {
	cl, a, b := twoNodes(t, ModeFTGM)
	pa, _ := a.OpenPort(1)
	pb, _ := b.OpenPort(1)
	region, err := pb.RegisterMemory(256)
	if err != nil {
		t.Fatal(err)
	}
	// Offset + length exceeds the region: a protocol violation that must
	// never scribble on other memory.
	if err := pa.DirectedSend(b.ID(), 1, region.ID, 200, make([]byte, 100), nil); err != nil {
		t.Fatal(err)
	}
	// Unknown region id.
	if err := pa.DirectedSend(b.ID(), 1, 9999, 0, []byte("x"), nil); err != nil {
		t.Fatal(err)
	}
	cl.Run(5 * Millisecond)
	if b.MCPStats().DirectedDeposits != 0 {
		t.Error("out-of-bounds deposit landed")
	}
	if b.MCPStats().BadHeaderDrops < 2 {
		t.Errorf("BadHeaderDrops = %d, want >= 2", b.MCPStats().BadHeaderDrops)
	}
	for _, v := range region.Buf {
		if v != 0 {
			t.Fatal("region modified by rejected deposit")
		}
	}
}

func TestDirectedSendSurvivesRecovery(t *testing.T) {
	// Directed sends ride the same shadow/sequence machinery: a hang on
	// the sender mid-stream must not lose or duplicate deposits.
	cfg := DefaultConfig(ModeFTGM)
	cfg.Host.SendTokens = 256
	cl, a, b := twoNodesCfg(t, cfg)
	pa, _ := a.OpenPort(1)
	pb, _ := b.OpenPort(1)
	region, err := pb.RegisterMemory(64 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	// Each deposit writes an 8-byte slot; slot i gets value i+1.
	const slots = 50
	acked := 0
	var post func(i int)
	post = func(i int) {
		if i >= slots {
			return
		}
		buf := make([]byte, 8)
		buf[0] = byte(i + 1)
		if err := pa.DirectedSend(b.ID(), 1, region.ID, uint32(8*i), buf, func(SendStatus) {
			acked++
		}); err != nil {
			t.Fatalf("deposit %d: %v", i, err)
		}
		cl.After(200*Microsecond, func() { post(i + 1) })
	}
	post(0)
	cl.After(3*Millisecond, func() { a.InjectHang() })
	cl.Run(15 * Second)
	if acked != slots {
		t.Fatalf("acknowledged %d/%d deposits", acked, slots)
	}
	for i := 0; i < slots; i++ {
		if region.Buf[8*i] != byte(i+1) {
			t.Fatalf("slot %d = %d after recovery", i, region.Buf[8*i])
		}
	}
}

func TestDirectedSendMixedWithRegular(t *testing.T) {
	// Directed and ordinary sends interleave on the same stream and stay
	// ordered (they share sequence numbers).
	cl, a, b := twoNodes(t, ModeFTGM)
	pa, _ := a.OpenPort(1)
	pb, _ := b.OpenPort(1)
	region, err := pb.RegisterMemory(1024)
	if err != nil {
		t.Fatal(err)
	}
	var regular [][]byte
	pb.SetReceiveHandler(func(ev RecvEvent) {
		regular = append(regular, append([]byte(nil), ev.Data...))
		_ = pb.ProvideReceiveBuffer(64, PriorityLow)
	})
	for i := 0; i < 8; i++ {
		if err := pb.ProvideReceiveBuffer(64, PriorityLow); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		if i%2 == 0 {
			if err := pa.DirectedSend(b.ID(), 1, region.ID, uint32(16*i), []byte{byte(i + 1)}, nil); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := pa.Send(b.ID(), 1, PriorityLow, []byte{byte(i + 1)}, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	cl.Run(10 * Millisecond)
	if len(regular) != 3 {
		t.Fatalf("regular deliveries = %d, want 3", len(regular))
	}
	if b.MCPStats().DirectedDeposits != 3 {
		t.Fatalf("deposits = %d, want 3", b.MCPStats().DirectedDeposits)
	}
	for i := 0; i < 6; i += 2 {
		if region.Buf[16*i] != byte(i+1) {
			t.Errorf("deposit slot %d wrong", i)
		}
	}
}

func TestDirectedRegionSurvivesHostDeath(t *testing.T) {
	// Regions are part of the recovery anchor: the checkpoint carries the
	// id allocator, the geometry and the contents (an acknowledged deposit
	// lives only in the region buffer), and the restore re-registers them
	// with the replacement MCP before peers' Go-Back-N windows retransmit
	// the in-flight deposits.
	cl, a, b := twoNodesCfg(t, hostFaultConfig())
	pa, _ := a.OpenPort(1)
	pb, _ := b.OpenPort(1)
	region, err := pb.RegisterMemory(1024)
	if err != nil {
		t.Fatal(err)
	}

	// Slots 0..9 deposited and acknowledged before the death.
	const preSlots = 10
	for i := 0; i < preSlots; i++ {
		if err := pa.DirectedSend(b.ID(), 1, region.ID, uint32(8*i), []byte{byte(i + 1)}, nil); err != nil {
			t.Fatal(err)
		}
		// The post rides the shared dispatcher now, so the sender is
		// visibly undrained until it reaches the MCP.
		if a.Drained() {
			t.Fatal("in-flight directed post invisible to Drained")
		}
		cl.Run(500 * Microsecond)
	}
	drainNode(t, cl, b)
	ck, err := b.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.Ports) != 1 || len(ck.Ports[0].Regions) != 1 ||
		len(ck.Ports[0].Regions[0].Data) != 1024 || ck.Ports[0].NextRegion != region.ID {
		t.Fatalf("checkpoint region shape: %+v", ck.Ports)
	}
	b.Kill()

	// One more deposit while the slot is dead: it waits in a's Go-Back-N
	// window and must land exactly once after the restore re-registers the
	// region.
	inFlightAcked := false
	if err := pa.DirectedSend(b.ID(), 1, region.ID, uint32(8*preSlots), []byte{preSlots + 1}, func(s SendStatus) {
		inFlightAcked = s == SendOK
	}); err != nil {
		t.Fatal(err)
	}
	cl.Run(2 * Millisecond)
	if inFlightAcked {
		t.Fatal("dead host acknowledged a deposit")
	}

	restored := false
	err = b.Restore(wireCheckpoint(t, ck), func(ports map[PortID]*Port) {
		np, ok := ports[1]
		if !ok {
			t.Error("restore did not rebuild port 1")
			return
		}
		pb = np
	}, func() { restored = true })
	if err != nil {
		t.Fatal(err)
	}
	cl.Run(50 * Millisecond)
	if !restored {
		t.Fatal("restore never completed")
	}

	regions := pb.Regions()
	if len(regions) != 1 || regions[0].ID != region.ID || len(regions[0].Buf) != 1024 {
		t.Fatalf("restored regions: %+v", regions)
	}
	if !inFlightAcked {
		t.Fatal("in-flight deposit never acknowledged after restore")
	}
	for i := 0; i <= preSlots; i++ {
		if regions[0].Buf[8*i] != byte(i+1) {
			t.Fatalf("slot %d = %d after restore", i, regions[0].Buf[8*i])
		}
	}
	// The allocator cursor came back with the checkpoint: a region
	// registered by the replacement process must not reuse an id peers may
	// still hold.
	r2, err := pb.RegisterMemory(64)
	if err != nil {
		t.Fatal(err)
	}
	if r2.ID <= region.ID {
		t.Fatalf("region id %d reused after restore (old max %d)", r2.ID, region.ID)
	}
}

func TestRegisterMemoryValidation(t *testing.T) {
	cl, a, _ := twoNodes(t, ModeFTGM)
	p, _ := a.OpenPort(1)
	if _, err := p.RegisterMemory(0); err == nil {
		t.Error("zero-size region registered")
	}
	a.ClosePort(1)
	if _, err := p.RegisterMemory(64); err != ErrPortClosed {
		t.Errorf("err = %v, want ErrPortClosed", err)
	}
	_ = cl
}
