package gm

import (
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/ckpt"
)

// hostFaultConfig: FTGM with the fast recovery/restore timings the shard
// trials use, plus a send-token pool deep enough that traffic toward a dead
// host can keep queueing in the Go-Back-N window for the whole outage.
func hostFaultConfig() Config {
	cfg := fastRecoveryConfig(ModeFTGM, 1)
	cfg.Host.SendTokens = 1024
	return cfg
}

// idxPayload encodes a message index into a payload the receiver can audit.
func idxPayload(i int) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint32(b, uint32(i))
	return b
}

func payloadIdx(b []byte) int { return int(binary.LittleEndian.Uint32(b)) }

// idxRecorder attaches a receive handler that records payload indices in
// delivery order and recycles the buffers.
func idxRecorder(p *Port, got *[]int) {
	p.SetReceiveHandler(func(ev RecvEvent) {
		*got = append(*got, payloadIdx(ev.Data))
		_ = p.RecycleReceiveBuffer(ev.Data, PriorityLow)
	})
}

// wantExactlyOnceInOrder fails unless got is exactly 0..n-1 in order.
func wantExactlyOnceInOrder(t *testing.T, dir string, got []int, n int) {
	t.Helper()
	if len(got) != n {
		t.Fatalf("%s: delivered %d of %d", dir, len(got), n)
	}
	for i, idx := range got {
		if idx != i {
			t.Fatalf("%s: position %d holds index %d (dup, loss or reorder)", dir, i, idx)
		}
	}
}

// drainNode steps the sim until the node reaches a message boundary.
func drainNode(t *testing.T, cl *Cluster, n *Node) {
	t.Helper()
	for i := 0; i < 10000; i++ {
		if n.Drained() {
			return
		}
		cl.Run(10 * Microsecond)
	}
	t.Fatalf("%s never drained", n.name)
}

// wireCheckpoint round-trips a checkpoint through the versioned wire codec,
// exactly as a standby host would receive it.
func wireCheckpoint(t *testing.T, c *ckpt.Checkpoint) *ckpt.Checkpoint {
	t.Helper()
	dec, err := ckpt.Decode(c.Encode())
	if err != nil {
		t.Fatalf("checkpoint wire round-trip: %v", err)
	}
	return dec
}

// TestHostFaultGuards covers the drain/checkpoint/revive error surface:
// checkpointing an undrained or dead node, reviving a live one, and
// restoring a checkpoint onto the wrong slot.
func TestHostFaultGuards(t *testing.T) {
	cl, a, b := twoNodesCfg(t, hostFaultConfig())
	pa, err := a.OpenPort(2)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.OpenPort(2)
	if err != nil {
		t.Fatal(err)
	}
	pb.SetReceiveHandler(func(ev RecvEvent) {})
	if err := pb.ProvideReceiveBuffer(4096, PriorityLow); err != nil {
		t.Fatal(err)
	}
	cl.Run(Millisecond)
	if !a.Drained() || !b.Drained() {
		t.Fatal("idle booted nodes must be drained")
	}

	if err := pa.Send(b.ID(), 2, PriorityLow, []byte("in flight"), nil); err != nil {
		t.Fatal(err)
	}
	if a.Drained() {
		t.Fatal("node with a deferred send post reports drained")
	}
	if _, err := a.Checkpoint(); !errors.Is(err, ErrNotDrained) {
		t.Fatalf("undrained checkpoint: %v, want ErrNotDrained", err)
	}
	cl.Run(5 * Millisecond)
	if !a.Drained() || !b.Drained() {
		t.Fatal("nodes must drain once traffic settles")
	}

	ckA, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	ckB, err := b.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if ckA.UID == ckB.UID || ckB.NodeID != b.ID() {
		t.Fatalf("checkpoint identities: a=%d b=%d/%d", ckA.UID, ckB.UID, ckB.NodeID)
	}
	if len(ckB.RxAcks) == 0 || len(ckB.Ports) != 1 || len(ckB.Ports[0].RecvTokens) != 0 {
		t.Fatalf("checkpoint shape: %+v", ckB)
	}

	if err := a.Restore(ckA, nil, nil); !errors.Is(err, ErrNodeAlive) {
		t.Fatalf("restore of live node: %v, want ErrNodeAlive", err)
	}
	b.Kill()
	b.Kill() // idempotent
	if !b.Dead() {
		t.Fatal("killed node not dead")
	}
	if _, err := b.Checkpoint(); !errors.Is(err, ErrNodeDead) {
		t.Fatalf("checkpoint of dead node: %v, want ErrNodeDead", err)
	}
	if _, err := b.OpenPort(3); !errors.Is(err, ErrNodeDead) {
		t.Fatalf("open port on dead node: %v, want ErrNodeDead", err)
	}
	if err := b.Restore(ckA, nil, nil); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("restore with foreign checkpoint: %v, want ErrCheckpointMismatch", err)
	}
	if err := b.Restore(nil, nil, nil); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("restore with nil checkpoint: %v, want ErrCheckpointMismatch", err)
	}

	done := false
	if err := b.Restore(wireCheckpoint(t, ckB), nil, func() { done = true }); err != nil {
		t.Fatal(err)
	}
	cl.Run(50 * Millisecond)
	if !done || b.Dead() {
		t.Fatal("restore did not complete")
	}
}

// TestHostDeathRestoreMidBurst kills a host mid-burst with bidirectional
// traffic in flight, checkpoints at the drain boundary through the wire
// codec, restores, and requires exactly-once in-order delivery in both
// directions: the victim's unacknowledged receives are retransmitted by the
// peer's Go-Back-N window, the victim's own unacknowledged sends are
// re-posted from the checkpoint with their original sequence numbers, and
// the peer's receive ACK table dedups whatever the fault window already
// delivered.
func TestHostDeathRestoreMidBurst(t *testing.T) {
	const total = 60
	const killAt = 25

	cl, a, b := twoNodesCfg(t, hostFaultConfig())
	pa, err := a.OpenPort(2)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.OpenPort(2)
	if err != nil {
		t.Fatal(err)
	}
	var atB, atA []int
	idxRecorder(pb, &atB)
	idxRecorder(pa, &atA)
	for i := 0; i < 64; i++ {
		if err := pa.ProvideReceiveBuffer(64, PriorityLow); err != nil {
			t.Fatal(err)
		}
		if err := pb.ProvideReceiveBuffer(64, PriorityLow); err != nil {
			t.Fatal(err)
		}
	}

	sentA, sentB := 0, 0
	bUp := true
	step := func() {
		if sentA < total {
			if err := pa.Send(b.ID(), 2, PriorityLow, idxPayload(sentA), nil); err != nil {
				t.Fatalf("a send %d: %v", sentA, err)
			}
			sentA++
		}
		if sentB < total && bUp {
			if err := pb.Send(a.ID(), 2, PriorityLow, idxPayload(sentB), nil); err != nil {
				t.Fatalf("b send %d: %v", sentB, err)
			}
			sentB++
		}
		cl.Run(50 * Microsecond)
	}

	for sentA < killAt {
		step()
	}

	// Drain protocol: quiesce at a message boundary, snapshot, kill — the
	// checkpoint and the death share the same instant.
	drainNode(t, cl, b)
	ckB, err := b.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	b.Kill()
	bUp = false

	// Traffic keeps flowing into the dead slot; the sender's Go-Back-N
	// window holds it.
	deliveredAtKill := len(atB)
	for i := 0; i < 10; i++ {
		step()
	}
	if len(atB) != deliveredAtKill {
		t.Fatal("dead host delivered messages")
	}

	restored := false
	err = b.Restore(wireCheckpoint(t, ckB), func(ports map[PortID]*Port) {
		np, ok := ports[2]
		if !ok {
			t.Error("restore did not rebuild port 2")
			return
		}
		pb = np
		idxRecorder(pb, &atB)
	}, func() { restored, bUp = true, true })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000 && !restored; i++ {
		step()
	}
	if !restored {
		t.Fatal("restore never completed")
	}
	for sentA < total || sentB < total {
		step()
	}
	cl.Run(200 * Millisecond)

	wantExactlyOnceInOrder(t, "a->b", atB, total)
	wantExactlyOnceInOrder(t, "b->a", atA, total)
}

// TestHostDeathRestorePollingPort: on a polling-mode port the last hop to
// the application is the receive queue the process drains with Receive(),
// so a committed-and-ACKed event sitting there must hold off the drain
// verdict — a checkpoint cut above a non-empty poll queue would record the
// seqs in its RxAck table and dup-drop the peer's retransmissions after the
// restore, losing the messages forever. The test then kills and restores
// the polling port mid-burst and audits exactly-once in-order delivery.
func TestHostDeathRestorePollingPort(t *testing.T) {
	const before = 10
	const after = 10

	cl, a, b := twoNodesCfg(t, hostFaultConfig())
	pa, err := a.OpenPort(2)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.OpenPort(2)
	if err != nil {
		t.Fatal(err)
	}
	pb.EnablePolling()
	for i := 0; i < 64; i++ {
		if err := pb.ProvideReceiveBuffer(64, PriorityLow); err != nil {
			t.Fatal(err)
		}
	}

	var atB []int
	poll := func() {
		for {
			ev, ok := pb.Receive()
			if !ok {
				return
			}
			if ev.Type == EvReceived {
				atB = append(atB, payloadIdx(ev.Data))
				_ = pb.RecycleReceiveBuffer(ev.Data, PriorityLow)
			} else {
				pb.UnknownEvent(ev)
			}
		}
	}

	for i := 0; i < before; i++ {
		if err := pa.Send(b.ID(), 2, PriorityLow, idxPayload(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	cl.Run(10 * Millisecond)
	if pb.Pending() == 0 {
		t.Fatal("no events queued on the polling port")
	}
	// Committed, ACKed, undelivered: the node must not report drained and
	// must refuse to checkpoint until the application polls the queue dry.
	if b.Drained() {
		t.Fatal("node drained with events in the poll queue")
	}
	if _, err := b.Checkpoint(); !errors.Is(err, ErrNotDrained) {
		t.Fatalf("checkpoint above a poll queue: %v, want ErrNotDrained", err)
	}
	poll()
	drainNode(t, cl, b)

	ck, err := b.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	b.Kill()

	// Traffic toward the dead slot waits in the sender's Go-Back-N window.
	for i := before; i < before+after; i++ {
		if err := pa.Send(b.ID(), 2, PriorityLow, idxPayload(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	cl.Run(2 * Millisecond)

	restored := false
	err = b.Restore(wireCheckpoint(t, ck), func(ports map[PortID]*Port) {
		np, ok := ports[2]
		if !ok {
			t.Error("restore did not rebuild port 2")
			return
		}
		pb = np
		pb.EnablePolling() // polling is process state; the replacement re-arms it
	}, func() { restored = true })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		cl.Run(100 * Microsecond)
		if restored {
			poll()
		}
	}
	if !restored {
		t.Fatal("restore never completed")
	}
	wantExactlyOnceInOrder(t, "a->b", atB, before+after)
}

// TestRestoreSendCompletionReArm: completion callbacks are closures and do
// not survive host death; the reattach hook re-arms them for the
// checkpointed outstanding sends via OutstandingSendIDs/SetSendCompletion,
// and the re-posted send then completes through the fresh callback.
func TestRestoreSendCompletionReArm(t *testing.T) {
	cl, a, b := twoNodesCfg(t, hostFaultConfig())
	pa, err := a.OpenPort(2)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.OpenPort(2)
	if err != nil {
		t.Fatal(err)
	}
	pa.SetReceiveHandler(func(ev RecvEvent) {})

	// No receive buffer on a: b's send stays unacknowledged (NACKed and
	// retried), so it is deterministically outstanding at the checkpoint.
	preDeath := false
	if err := pb.Send(a.ID(), 2, PriorityLow, []byte("paced"), func(SendStatus) { preDeath = true }); err != nil {
		t.Fatal(err)
	}
	drainNode(t, cl, b)
	ck, err := b.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.Ports) != 1 || len(ck.Ports[0].SendTokens) != 1 {
		t.Fatalf("checkpoint outstanding sends: %+v", ck.Ports)
	}
	b.Kill()

	completed := make(map[uint64]SendStatus)
	err = b.Restore(wireCheckpoint(t, ck), func(ports map[PortID]*Port) {
		np, ok := ports[2]
		if !ok {
			t.Error("restore did not rebuild port 2")
			return
		}
		pb = np
		ids := np.OutstandingSendIDs()
		if len(ids) != 1 {
			t.Errorf("OutstandingSendIDs = %v, want one id", ids)
			return
		}
		for _, id := range ids {
			id := id
			if err := np.SetSendCompletion(id, func(s SendStatus) { completed[id] = s }); err != nil {
				t.Errorf("SetSendCompletion(%d): %v", id, err)
			}
		}
		if err := np.SetSendCompletion(999999, func(SendStatus) {}); !errors.Is(err, ErrBadArgument) {
			t.Errorf("SetSendCompletion on unknown token: %v, want ErrBadArgument", err)
		}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cl.Run(20 * Millisecond)
	if err := pa.ProvideReceiveBuffer(64, PriorityLow); err != nil {
		t.Fatal(err)
	}
	cl.Run(50 * Millisecond)
	if preDeath {
		t.Fatal("pre-death callback closure fired across the host death")
	}
	if len(completed) != 1 {
		t.Fatalf("re-armed completions fired = %d, want 1", len(completed))
	}
	for _, s := range completed {
		if s != SendOK {
			t.Fatalf("re-armed completion status = %v", s)
		}
	}
	if pb.SendTokensAvailable() != hostFaultConfig().Host.SendTokens {
		t.Fatalf("send token not returned: %d", pb.SendTokensAvailable())
	}
}

// TestHostDeathRejoinAfterExpulsion: the host dies, stays down long enough
// that the peer expels it (streams forgotten, routes dropped), then rejoins
// from its checkpoint. Identity and port shape come back; protocol state
// restarts at sequence 1 on both sides, and the victim's checkpointed
// outstanding sends are disowned rather than replayed into reset streams.
func TestHostDeathRejoinAfterExpulsion(t *testing.T) {
	const before = 20
	const after = 20

	cl, a, b := twoNodesCfg(t, hostFaultConfig())
	pa, err := a.OpenPort(2)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.OpenPort(2)
	if err != nil {
		t.Fatal(err)
	}
	var atB, atA []int
	idxRecorder(pb, &atB)
	idxRecorder(pa, &atA)
	for i := 0; i < 64; i++ {
		if err := pa.ProvideReceiveBuffer(64, PriorityLow); err != nil {
			t.Fatal(err)
		}
		if err := pb.ProvideReceiveBuffer(64, PriorityLow); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < before; i++ {
		if err := pa.Send(b.ID(), 2, PriorityLow, idxPayload(i), nil); err != nil {
			t.Fatal(err)
		}
		if err := pb.Send(a.ID(), 2, PriorityLow, idxPayload(i), nil); err != nil {
			t.Fatal(err)
		}
		cl.Run(50 * Microsecond)
	}
	drainNode(t, cl, b)

	// One more burst from b that will still be unacknowledged at the kill:
	// these are the checkpointed outstanding sends Rejoin must disown.
	if err := pb.Send(a.ID(), 2, PriorityLow, idxPayload(before), nil); err != nil {
		t.Fatal(err)
	}
	drainNode(t, cl, b)
	ck, err := b.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	b.Kill()

	// The control plane declares b dead and expels it: the peer marks it
	// unreachable and, on readmission, forgets both stream directions
	// (gossip Alive hook / central readmitNode both funnel into resetPeer).
	a.setPeerUnreachable(b.ID())
	cl.Run(20 * Millisecond)
	if err := pa.Send(b.ID(), 2, PriorityLow, idxPayload(0), nil); !errors.Is(err, ErrPeerUnreachable) {
		t.Fatalf("send to expelled peer: %v, want ErrPeerUnreachable", err)
	}

	rejoined := false
	err = b.Rejoin(wireCheckpoint(t, ck), func(ports map[PortID]*Port) {
		np, ok := ports[2]
		if !ok {
			t.Error("rejoin did not rebuild port 2")
			return
		}
		pb = np
		idxRecorder(pb, &atB)
	}, func() { rejoined = true })
	if err != nil {
		t.Fatal(err)
	}
	cl.Run(100 * Millisecond)
	if !rejoined || b.Dead() {
		t.Fatal("rejoin did not complete")
	}
	a.resetPeer(b.ID())

	// Fresh epoch: both directions must flow again from restarted streams.
	for i := 0; i < after; i++ {
		if err := pa.Send(b.ID(), 2, PriorityLow, idxPayload(1000+i), nil); err != nil {
			t.Fatalf("post-rejoin a send %d: %v", i, err)
		}
		if err := pb.Send(a.ID(), 2, PriorityLow, idxPayload(1000+i), nil); err != nil {
			t.Fatalf("post-rejoin b send %d: %v", i, err)
		}
		cl.Run(50 * Microsecond)
	}
	cl.Run(200 * Millisecond)

	if len(atB) != before+after {
		t.Fatalf("a->b delivered %d, want %d", len(atB), before+after)
	}
	for i, idx := range atB {
		want := i
		if i >= before {
			want = 1000 + i - before
		}
		if idx != want {
			t.Fatalf("a->b position %d holds %d, want %d", i, idx, want)
		}
	}
	// b->a: the pre-kill burst delivered 0..before-1; the extra in-flight
	// message `before` was disowned by Rejoin (its sender is excused by
	// death), and the fresh epoch delivers 1000..1000+after-1 exactly once.
	if len(atA) < before+after || len(atA) > before+1+after {
		t.Fatalf("b->a delivered %d", len(atA))
	}
	tail := atA[len(atA)-after:]
	for i, idx := range tail {
		if idx != 1000+i {
			t.Fatalf("b->a fresh epoch position %d holds %d", i, idx)
		}
	}
	seen := map[int]bool{}
	for _, idx := range atA {
		if seen[idx] {
			t.Fatalf("b->a duplicate delivery of %d", idx)
		}
		seen[idx] = true
	}
}
