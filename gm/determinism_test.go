package gm

import (
	"fmt"
	"testing"
)

// runWorkloadFingerprint boots a cluster from seed, runs a mixed workload
// with a mid-stream hang, and returns a fingerprint of everything
// observable: delivery order, timings, and protocol counters.
func runWorkloadFingerprint(t *testing.T, seed uint64) string {
	t.Helper()
	cfg := DefaultConfig(ModeFTGM)
	cfg.Seed = seed
	cfg.Host.SendTokens = 256
	cl := NewCluster(cfg)
	a := cl.AddNode("a")
	b := cl.AddNode("b")
	sw := cl.AddSwitch("sw")
	if err := cl.Connect(a, sw, 0); err != nil {
		t.Fatal(err)
	}
	if err := cl.Connect(b, sw, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Boot(); err != nil {
		t.Fatal(err)
	}
	pa, _ := a.OpenPort(1)
	pb, _ := b.OpenPort(1)
	fp := ""
	pb.SetReceiveHandler(func(ev RecvEvent) {
		fp += fmt.Sprintf("%v:%d;", cl.Now(), ev.Seq)
		_ = pb.ProvideReceiveBuffer(4200, PriorityLow)
	})
	for i := 0; i < 32; i++ {
		if err := pb.ProvideReceiveBuffer(4200, PriorityLow); err != nil {
			t.Fatal(err)
		}
	}
	rng := cl.Engine().RNG().Fork()
	sent := 0
	var pump func()
	pump = func() {
		if sent >= 60 {
			return
		}
		sent++
		size := rng.Intn(4100) + 1
		if err := pa.Send(b.ID(), 1, PriorityLow, make([]byte, size), nil); err != nil {
			t.Fatal(err)
		}
		cl.After(Duration(rng.Intn(300)+50)*Microsecond, pump)
	}
	pump()
	cl.After(4*Millisecond, func() { a.InjectHang() })
	cl.Run(10 * Second)
	fp += fmt.Sprintf("|stats:%+v|chip:%+v|events:%d",
		a.MCPStats(), a.ChipStats(), cl.Engine().Executed())
	return fp
}

func TestDeterministicReplay(t *testing.T) {
	// Same seed: bit-for-bit identical runs, including a full recovery.
	a := runWorkloadFingerprint(t, 77)
	b := runWorkloadFingerprint(t, 77)
	if a != b {
		t.Fatal("same-seed runs diverged")
	}
	// Different seed: the workload randomization must actually vary.
	c := runWorkloadFingerprint(t, 78)
	if a == c {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestConnectErrors(t *testing.T) {
	cl := NewCluster(DefaultConfig(ModeGM))
	n := cl.AddNode("n")
	sw := cl.AddSwitch("sw")
	if err := cl.Connect(nil, sw, 0); err == nil {
		t.Error("nil node accepted")
	}
	if err := cl.Connect(n, nil, 0); err == nil {
		t.Error("nil switch accepted")
	}
	if err := cl.Connect(n, sw, 99); err == nil {
		t.Error("bad port accepted")
	}
	if err := cl.Connect(n, sw, 0); err != nil {
		t.Fatal(err)
	}
	if err := cl.Connect(n, sw, 0); err == nil {
		t.Error("double cabling accepted")
	}
	if err := cl.ConnectSwitches(sw, nil, 1, 1); err == nil {
		t.Error("nil trunk switch accepted")
	}
}

func TestBootEmptyClusterFails(t *testing.T) {
	cl := NewCluster(DefaultConfig(ModeGM))
	if _, err := cl.Boot(); err == nil {
		t.Error("empty cluster booted")
	}
}

func TestBootDisconnectedNodeFails(t *testing.T) {
	cl := NewCluster(DefaultConfig(ModeGM))
	sw := cl.AddSwitch("sw")
	a := cl.AddNode("a")
	cl.AddNode("b") // never cabled
	if err := cl.Connect(a, sw, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Boot(); err == nil {
		t.Error("boot succeeded with an uncabled node")
	}
}

func TestSingleNodeBoot(t *testing.T) {
	cl := NewCluster(DefaultConfig(ModeFTGM))
	n := cl.AddNode("solo")
	sw := cl.AddSwitch("sw")
	if err := cl.Connect(n, sw, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Boot(); err != nil {
		t.Fatalf("single-node boot: %v", err)
	}
	if n.ID() != 1 {
		t.Errorf("solo node id = %d", n.ID())
	}
	if _, err := n.OpenPort(1); err != nil {
		t.Errorf("open port on solo node: %v", err)
	}
}

func TestRemapBeforeBootFails(t *testing.T) {
	cl := NewCluster(DefaultConfig(ModeGM))
	if _, err := cl.Remap(); err != ErrNotBooted {
		t.Errorf("err = %v, want ErrNotBooted", err)
	}
}
