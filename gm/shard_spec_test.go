package gm

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// --- Speculation probes -------------------------------------------------
//
// With cfg.Speculate the cluster's own node and switch domains are
// speculation-eligible (their state journals itself — DESIGN.md §16), and
// the trials below additionally ride a pair of co-simulated probe domains
// along with the fabric: a dense conservative ticker A whose rare transfers
// land inside the spans of a dense spec-capable ticker B. That deterministically
// forces both speculation outcomes — quiet spans commit, invaded spans roll
// back — independent of how the gm traffic happens to phase against the
// window schedule.

// workCell holds one node's test-workload state: the tick loop's peer cursor
// and the counters the fingerprint prints. The workload runs as node-domain
// event code, so on a speculating cluster it must journal itself like any
// other domain-resident component — touch() at the top of every mutating
// callback (receive handlers included).
type workCell struct {
	eng      *sim.Engine
	mark     uint64
	peer     int
	sent     int
	rejected int
	recv     int
	extra    int // trial-specific (e.g. recovery completions)

	shadow workSnap
}

type workSnap struct{ peer, sent, rejected, recv, extra int }

func (w *workCell) touch() { w.eng.SpecTouch(&w.mark, w) }

func (w *workCell) SpecSave() {
	w.shadow = workSnap{w.peer, w.sent, w.rejected, w.recv, w.extra}
}

func (w *workCell) SpecRestore() {
	s := w.shadow
	w.peer, w.sent, w.rejected, w.recv, w.extra = s.peer, s.sent, s.rejected, s.recv, s.extra
}

type probeMsg struct {
	at sim.Time
	v  uint64
}

type probeBoundary struct {
	src, dst *sim.Engine
	owner    *specProbe
	class    uint32 // arrival ordering class (sim.AtArrival)
	q        []probeMsg
	noted    bool
}

func (b *probeBoundary) BoundaryTarget() *sim.Engine { return b.dst }

func (b *probeBoundary) EarliestPending() sim.Time {
	min := sim.Forever
	for _, m := range b.q {
		if m.at < min {
			min = m.at
		}
	}
	return min
}

func (b *probeBoundary) FlushBoundary() {
	b.noted = false
	for _, m := range b.q {
		m := m
		b.dst.AtArrival(m.at, b.class, "xfer", func() { b.owner.recv(m.v) })
	}
	b.q = b.q[:0]
}

func (b *probeBoundary) send(v uint64, lat Duration) {
	b.q = append(b.q, probeMsg{at: b.src.Now() + lat, v: v})
	if !b.noted {
		b.noted = true
		b.src.NoteBoundary(b)
	}
}

type specProbe struct {
	eng      *sim.Engine
	name     string
	counter  uint64
	hash     uint64
	out      *probeBoundary // nil for pure receivers
	lat      Duration
	sendMod  uint64 // send every sendMod ticks (0 = never)
	deadline Time
}

type probeSnap struct {
	counter uint64
	hash    uint64
	outQ    []probeMsg
	noted   bool
}

func (p *specProbe) save() any {
	s := probeSnap{counter: p.counter, hash: p.hash}
	if p.out != nil {
		s.outQ = append([]probeMsg(nil), p.out.q...)
		s.noted = p.out.noted
	}
	return s
}

func (p *specProbe) restore(v any) {
	s := v.(probeSnap)
	p.counter = s.counter
	p.hash = s.hash
	if p.out != nil {
		p.out.q = append(p.out.q[:0], s.outQ...)
		p.out.noted = s.noted
	}
}

func (p *specProbe) fold(v uint64) {
	h := p.hash ^ v
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	p.hash = h ^ (h >> 27)
}

func (p *specProbe) recv(v uint64) {
	p.fold(v ^ 0xabcdef)
	p.fold(uint64(p.eng.Now()))
}

func (p *specProbe) tick() {
	p.counter++
	p.fold(p.counter)
	p.fold(uint64(p.eng.Now()))
	p.fold(p.eng.RNG().Uint64())
	if p.sendMod > 0 && p.counter%p.sendMod == 0 && p.out != nil {
		p.out.send(p.hash, p.lat)
	}
	if p.counter%97 == 0 {
		p.eng.Tracef("probe", "%s c=%d h=%x", p.name, p.counter, p.hash)
	}
	next := p.eng.Now() + 50*Nanosecond + p.eng.RNG().Duration(150*Nanosecond)
	if next <= p.deadline {
		p.eng.AtLabel(next, "tick", func() { p.tick() })
	}
}

// attachSpecProbes wires the A→B probe pair into a cluster before Boot and
// returns both probes. The horizon must stay below the probe link latency
// for spans to commit; the cluster config carries it.
func attachSpecProbes(c *Cluster, deadline Time) (a, b *specProbe) {
	root := c.Engine()
	ea := root.NewDomain("probeA")
	eb := root.NewDomain("probeB")
	const lat = Microsecond
	b = &specProbe{eng: eb, name: "B", deadline: deadline}
	a = &specProbe{eng: ea, name: "A", lat: lat, sendMod: 199, deadline: deadline}
	a.out = &probeBoundary{src: ea, dst: eb, owner: b, class: eb.ArrivalClass()}
	ea.ObserveEdgeLookahead(eb, lat)
	eb.ObserveEdgeLookahead(ea, lat)
	eb.EnableSpeculation(b.save, b.restore)
	ea.AtLabel(100*Nanosecond, "tick", func() { a.tick() })
	eb.AtLabel(130*Nanosecond, "tick", func() { b.tick() })
	return a, b
}

// runClosSpecShardTrial runs the large-cluster invariance trial: a 256-node
// Clos (4 spines, 32 leaves) with speculation armed, carrying all the fault
// machinery at once — a lossy cable (Go-Back-N), a processor hang with full
// FTGM recovery, and a transient leaf-uplink outage that blackholes a slice
// of the spine traffic until the port revives — plus the probe pair forcing
// both speculative outcomes. Returns a byte-exact fingerprint (trace hash +
// every counter) and the speculation totals.
func runClosSpecShardTrial(t *testing.T, shards int, speculate bool) (string, uint64, uint64) {
	t.Helper()
	cfg := fastRecoveryConfig(ModeFTGM, shards)
	cfg.Speculate = speculate
	cfg.SpecHorizon = 800 * Nanosecond // below the probe link latency
	c := NewCluster(cfg)
	topo, err := BuildClos(c, 4, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := attachSpecProbes(c, Time(500*Microsecond))
	// At 256 nodes the boot flood alone is megabytes of trace; hash the
	// stream instead of holding it (the hash is just as byte-exact).
	th := fnv.New64a()
	c.EnableTrace(th)
	if _, err := topo.Boot(c); err != nil {
		t.Fatal(err)
	}
	n := len(topo.Nodes)
	cells := make([]*workCell, n)
	ports := make([]*Port, n)
	for i, node := range topo.Nodes {
		p, err := node.OpenPort(2)
		if err != nil {
			t.Fatal(err)
		}
		ports[i] = p
		cells[i] = &workCell{eng: node.Engine(), peer: (i + 1) % n}
		w := cells[i]
		p.SetReceiveHandler(func(ev RecvEvent) {
			w.touch()
			w.recv++
			_ = p.RecycleReceiveBuffer(ev.Data, ev.Prio)
		})
		for j := 0; j < 8; j++ {
			if err := p.ProvideReceiveBuffer(512, PriorityLow); err != nil {
				t.Fatal(err)
			}
		}
	}
	topo.Nodes[2].Recovered = func() { cells[2].touch(); cells[2].extra++ }
	// Chaos ingredient one: a lossy cable on node 1 keeps Go-Back-N busy.
	topo.Nodes[1].Link().SetFaults(fabric.FaultProfile{DropProb: 0.05}, 7)

	stopAt := c.Now() + 2*Millisecond
	payload := make([]byte, 256)
	for i, node := range topo.Nodes {
		i := i
		eng := node.Engine()
		w := cells[i]
		var tick func()
		tick = func() {
			if eng.Now() >= stopAt {
				return
			}
			w.touch()
			if w.peer == i {
				w.peer = (w.peer + 1) % n
			}
			if err := ports[i].Send(topo.Nodes[w.peer].ID(), 2, PriorityLow, payload, nil); err != nil {
				w.rejected++
			} else {
				w.sent++
			}
			w.peer = (w.peer + 1) % n
			eng.After(40*Microsecond, tick)
		}
		eng.After(Duration(i%16+1)*500*Nanosecond, tick)
	}
	// Chaos ingredient two: hang node 2's processor mid-traffic; the FTD
	// detects and recovers it while peers retransmit into the outage.
	c.After(300*Microsecond, func() { topo.Nodes[2].InjectHang() })
	// Netfault ingredient: kill leaf 0's uplink to spine 0 for 600 µs.
	// Every cross-leaf flow hashed onto that spine blackholes at the
	// crossbar until the port revives and Go-Back-N repairs the streams.
	// (No watchdog remap here — the outage is shorter than a suspicion —
	// just raw transient-fault pressure on the sharded schedule.)
	up := topo.PerLeaf
	c.After(800*Microsecond, func() { topo.Leaves[0].SetPortDead(up, true) })
	c.After(1400*Microsecond, func() { topo.Leaves[0].SetPortDead(up, false) })

	c.RunUntil(stopAt + 16*Millisecond)
	c.Shutdown(Millisecond)
	if cells[2].extra == 0 {
		t.Fatal("256-node trial never completed FTGM recovery on the hung node")
	}

	root := c.Engine()
	commits, rollbacks, _, _ := root.SpecStats()
	// The speculation totals stay out of the fingerprint: the fingerprint is
	// compared against the conservative run too, where they are zero by
	// definition. They are returned separately so same-mode comparisons can
	// still assert the decisions themselves are shard-invariant.
	var sum bytes.Buffer
	fmt.Fprintf(&sum, "events=%d now=%d recovered=%d trace=%x\n",
		root.ExecutedAll(), c.Now(), cells[2].extra, th.Sum64())
	fmt.Fprintf(&sum, "probeA c=%d h=%x exec=%d\nprobeB c=%d h=%x exec=%d\n",
		pa.counter, pa.hash, pa.eng.Executed(), pb.counter, pb.hash, pb.eng.Executed())
	for i, node := range topo.Nodes {
		fmt.Fprintf(&sum, "node%d sent=%d rejected=%d recv=%d mcp=%+v\n",
			i, cells[i].sent, cells[i].rejected, cells[i].recv, node.MCPStats())
	}
	return sum.String(), commits, rollbacks
}

// TestShardInvarianceSpecClos is the large-cluster contract: on a 256-node
// Clos with speculation armed and every fault class active at once (lossy
// cable, processor hang + recovery, transient uplink outage), the complete
// fingerprint — trace stream, per-node counters — and the speculation
// decisions themselves are bit-for-bit identical across 1, 4 and 8
// executors, the trial provably exercised both speculative outcomes, and
// the whole speculative run is byte-identical to the conservative one:
// run-ahead must be invisible everywhere but the wall clock.
func TestShardInvarianceSpecClos(t *testing.T) {
	serial, commits, rollbacks := runClosSpecShardTrial(t, 1, true)
	if commits == 0 {
		t.Fatalf("no speculative span committed (rollbacks=%d); probes mistuned", rollbacks)
	}
	if rollbacks == 0 {
		t.Fatalf("no speculative span rolled back (commits=%d); probes mistuned", commits)
	}
	for _, shards := range []int{4, 8} {
		got, c, r := runClosSpecShardTrial(t, shards, true)
		diffFingerprints(t, fmt.Sprintf("shards=%d", shards), serial, got)
		if c != commits || r != rollbacks {
			t.Errorf("speculation decisions differ at %d shards: c=%d r=%d, want c=%d r=%d",
				shards, c, r, commits, rollbacks)
		}
	}
	cons, c, r := runClosSpecShardTrial(t, 1, false)
	if c != 0 || r != 0 {
		t.Fatalf("conservative run reported speculation activity: c=%d r=%d", c, r)
	}
	diffFingerprints(t, "conservative", serial, cons)
}
