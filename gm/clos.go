package gm

import (
	"fmt"

	"repro/internal/mapper"
)

// This file provides the large-cluster topology generators: two-tier Clos
// (leaf/spine) fabrics and k-ary fat-trees, with generator-computed minimal
// routes that follow the up*/down* discipline — every route climbs toward
// the spine/core tier, turns at most once, and descends; no route ever turns
// downward and then upward again, which (with the fabric's cut-through
// crossbars) rules out channel-dependency cycles. Both generators return a
// StaticRouteFunc-compatible Route method for Cluster.BootStatic, skipping
// the mapper's scout flood: the paper's mapper explores arbitrary unknown
// topologies, but a generated fabric already knows every route.

// routeDelta encodes one switch hop as Myrinet's signed relative delta: the
// output port is the input port plus the delta, modulo the crossbar size.
func routeDelta(in, out int) byte { return byte(int8(out - in)) }

// ClosTopology is a two-tier leaf/spine fabric built by BuildClos.
type ClosTopology struct {
	// Nodes in index order; node i hangs off leaf i/PerLeaf, down port
	// i%PerLeaf.
	Nodes []*Node
	// Leaves are the bottom-tier switches: PerLeaf down ports (0..PerLeaf-1)
	// to nodes, then one up port per spine (PerLeaf+s to spine s).
	Leaves []*Switch
	// Spines are the top-tier switches: port l cables to leaf l.
	Spines []*Switch
	// PerLeaf is the node count per leaf.
	PerLeaf int
}

// BuildClos assembles a two-tier Clos fabric on an empty cluster: `leaves`
// leaf switches with `nodesPerLeaf` nodes each, every leaf cabled to every
// one of `spines` spine switches. Leaf crossbars get nodesPerLeaf+spines
// ports, spines get `leaves` ports (AddSwitchPorts overrides the configured
// switch size). Call before BootStatic; Boot(c) runs it with the generated
// routes.
func BuildClos(c *Cluster, spines, leaves, nodesPerLeaf int) (*ClosTopology, error) {
	if spines < 1 || leaves < 1 || nodesPerLeaf < 1 {
		return nil, fmt.Errorf("%w: need >= 1 spine, leaf and node per leaf", ErrBadArgument)
	}
	if nodesPerLeaf+spines > 128 || leaves > 128 {
		return nil, fmt.Errorf("%w: crossbar radix exceeds the 8-bit route delta range", ErrBadArgument)
	}
	t := &ClosTopology{PerLeaf: nodesPerLeaf}
	for s := 0; s < spines; s++ {
		t.Spines = append(t.Spines, c.AddSwitchPorts(fmt.Sprintf("spine%d", s), leaves))
	}
	for l := 0; l < leaves; l++ {
		leaf := c.AddSwitchPorts(fmt.Sprintf("leaf%d", l), nodesPerLeaf+spines)
		t.Leaves = append(t.Leaves, leaf)
		for s := 0; s < spines; s++ {
			if err := c.ConnectSwitches(leaf, t.Spines[s], nodesPerLeaf+s, l); err != nil {
				return nil, err
			}
		}
	}
	for i := 0; i < leaves*nodesPerLeaf; i++ {
		n := c.AddNode(fmt.Sprintf("n%d", i))
		if err := c.Connect(n, t.Leaves[i/nodesPerLeaf], i%nodesPerLeaf); err != nil {
			return nil, err
		}
		t.Nodes = append(t.Nodes, n)
	}
	return t, nil
}

// Route returns the up*/down* route from node index src to dst: direct at a
// shared leaf, otherwise up to a spine chosen by (src+dst) mod spines — a
// deterministic spread so all-to-all traffic loads every spine — and down.
func (t *ClosTopology) Route(src, dst int) []byte {
	if src == dst {
		return nil
	}
	p := t.PerLeaf
	srcLeaf, srcLocal := src/p, src%p
	dstLeaf, dstLocal := dst/p, dst%p
	if srcLeaf == dstLeaf {
		return []byte{routeDelta(srcLocal, dstLocal)}
	}
	s := (src + dst) % len(t.Spines)
	return []byte{
		routeDelta(srcLocal, p+s), // leaf: up to spine s
		routeDelta(srcLeaf, dstLeaf),
		routeDelta(p+s, dstLocal), // leaf: down to the node
	}
}

// Boot brings the cluster up over the generated routes (see BootStatic).
func (t *ClosTopology) Boot(c *Cluster) (mapper.Result, error) {
	return c.BootStatic(t.Route)
}

// FatTreeTopology is a k-ary fat-tree built by BuildFatTree.
type FatTreeTopology struct {
	// K is the switch radix: k pods of k/2 edge and k/2 aggregation
	// switches, (k/2)^2 cores, k^3/4 hosts.
	K int
	// Nodes in index order; k/2 per edge switch, edges pod-major.
	Nodes []*Node
	// Edges and Aggs are pod-major: pod p's switches occupy [p*k/2, (p+1)*k/2).
	// Edge down ports 0..k/2-1 cable hosts, up port k/2+a cables pod agg a.
	// Agg down port e cables pod edge e, up port k/2+j cables core a*(k/2)+j.
	Edges, Aggs []*Switch
	// Cores: core c = a*(k/2)+j cables pod p at port p (to agg a's up port
	// k/2+j).
	Cores []*Switch
}

// BuildFatTree assembles a k-ary fat-tree (k even, >= 2) on an empty
// cluster. Every switch is a k-port crossbar. Call before BootStatic;
// Boot(c) runs it with the generated routes.
func BuildFatTree(c *Cluster, k int) (*FatTreeTopology, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("%w: fat-tree radix must be even and >= 2", ErrBadArgument)
	}
	if k > 128 {
		return nil, fmt.Errorf("%w: crossbar radix exceeds the 8-bit route delta range", ErrBadArgument)
	}
	t := &FatTreeTopology{K: k}
	h := k / 2
	for a := 0; a < h; a++ {
		for j := 0; j < h; j++ {
			t.Cores = append(t.Cores, c.AddSwitchPorts(fmt.Sprintf("core%d_%d", a, j), k))
		}
	}
	for p := 0; p < k; p++ {
		for a := 0; a < h; a++ {
			agg := c.AddSwitchPorts(fmt.Sprintf("agg%d_%d", p, a), k)
			t.Aggs = append(t.Aggs, agg)
			for j := 0; j < h; j++ {
				if err := c.ConnectSwitches(agg, t.Cores[a*h+j], h+j, p); err != nil {
					return nil, err
				}
			}
		}
		for e := 0; e < h; e++ {
			edge := c.AddSwitchPorts(fmt.Sprintf("edge%d_%d", p, e), k)
			t.Edges = append(t.Edges, edge)
			for a := 0; a < h; a++ {
				if err := c.ConnectSwitches(edge, t.Aggs[p*h+a], h+a, e); err != nil {
					return nil, err
				}
			}
		}
	}
	for i := 0; i < k*h*h; i++ {
		n := c.AddNode(fmt.Sprintf("n%d", i))
		if err := c.Connect(n, t.Edges[i/h], i%h); err != nil {
			return nil, err
		}
		t.Nodes = append(t.Nodes, n)
	}
	return t, nil
}

// Route returns the up*/down* route from node index src to dst: direct at a
// shared edge switch; up to a deterministically spread aggregation switch
// within a pod; through a core between pods. Never down-then-up.
func (t *FatTreeTopology) Route(src, dst int) []byte {
	if src == dst {
		return nil
	}
	h := t.K / 2
	srcEdge, srcLocal := src/h, src%h
	dstEdge, dstLocal := dst/h, dst%h
	if srcEdge == dstEdge {
		return []byte{routeDelta(srcLocal, dstLocal)}
	}
	srcPod, dstPod := srcEdge/h, dstEdge/h
	a := (src + dst) % h
	if srcPod == dstPod {
		return []byte{
			routeDelta(srcLocal, h+a),        // edge: up to agg a
			routeDelta(srcEdge%h, dstEdge%h), // agg: across the pod
			routeDelta(h+a, dstLocal),        // edge: down to the host
		}
	}
	j := (src ^ dst) % h
	return []byte{
		routeDelta(srcLocal, h+a),  // edge: up to agg a
		routeDelta(srcEdge%h, h+j), // agg: up to core a*h+j
		routeDelta(srcPod, dstPod), // core: across pods
		routeDelta(h+j, dstEdge%h), // agg: down to the edge
		routeDelta(h+a, dstLocal),  // edge: down to the host
	}
}

// Boot brings the cluster up over the generated routes (see BootStatic).
func (t *FatTreeTopology) Boot(c *Cluster) (mapper.Result, error) {
	return c.BootStatic(t.Route)
}
