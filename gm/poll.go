package gm

import "repro/internal/gmproto"

// PortEvent is an entry drained from a port's receive queue in polling
// mode — the direct analogue of the event union gm_receive() returns
// (Figure 3 of the paper). Applications handle the event types they care
// about and pass everything else to Port.Unknown, which is where the
// library hides fault recovery (§4.4).
type PortEvent struct {
	Type    gmproto.EventType
	Data    []byte
	Src     NodeID
	SrcPort PortID
	Seq     uint32
	Status  SendStatus
	TokenID uint64

	raw gmproto.Event
}

// EventType re-exports for switch statements.
const (
	EvReceived      = gmproto.EvReceived
	EvSent          = gmproto.EvSent
	EvSendError     = gmproto.EvSendError
	EvAlarm         = gmproto.EvAlarm
	EvNoRecvBuffer  = gmproto.EvNoRecvBuffer
	EvFaultDetected = gmproto.EvFaultDetected
)

// EnablePolling switches the port to GM's polling style: instead of
// invoking handlers, the library queues events; the application drains them
// with Receive (the gm_receive() loop of Figure 3) and must pass events it
// does not handle to Unknown — including FAULT_DETECTED, which is how
// recovery stays transparent without the application knowing what the
// event means.
//
// Token bookkeeping (shadow copies, sequence/ACK tables, flow-control
// credits) still happens at commit time, not at drain time, so a delayed
// poll never widens the fault windows.
func (p *Port) EnablePolling() {
	p.specTouch()
	p.polling = true
}

// Polling reports whether the port is in polling mode.
func (p *Port) Polling() bool { return p.polling }

// Pending reports how many events wait in the receive queue.
func (p *Port) Pending() int { return len(p.pollQueue) }

// Receive drains the oldest event from the port's receive queue, in the
// manner of gm_receive(). ok is false when the queue is empty. Receive on
// a non-polling port always reports false (events went to the handlers).
func (p *Port) Receive() (ev PortEvent, ok bool) {
	if !p.polling || len(p.pollQueue) == 0 {
		return PortEvent{}, false
	}
	p.specTouch()
	p.node.cpu.SpecTouch(p.node.eng)
	raw := p.pollQueue[0]
	p.pollQueue = p.pollQueue[1:]
	p.node.cpu.Charge(p.node.cluster.cfg.Host.RecvOverhead / 4) // poll cost
	return PortEvent{
		Type:    raw.Type,
		Data:    raw.Data,
		Src:     raw.Src,
		SrcPort: raw.SrcPort,
		Seq:     raw.Seq,
		Status:  raw.Status,
		TokenID: raw.TokenID,
		raw:     raw,
	}, true
}

// UnknownEvent is the polling-mode gm_unknown(): applications pass every
// event they do not recognize here, and the library handles it "in a
// default manner" (§3.1) — which for FAULT_DETECTED means running the full
// §4.4 recovery sequence.
func (p *Port) UnknownEvent(ev PortEvent) {
	p.Unknown(ev.raw)
}

// enqueuePoll routes an event into the polling queue after the commit-time
// bookkeeping has been done by mcpSink.
func (p *Port) enqueuePoll(ev gmproto.Event) {
	p.specTouch()
	p.pollQueue = append(p.pollQueue, ev)
}
