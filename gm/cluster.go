package gm

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/gmproto"
	"repro/internal/gossip"
	"repro/internal/mapper"
	"repro/internal/sim"
)

// Time and Duration re-export the virtual time types.
type (
	// Time is a virtual timestamp.
	Time = sim.Time
	// Duration is a span of virtual time.
	Duration = sim.Duration
)

// Common durations re-exported for application code.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Errors reported by cluster assembly and the port API.
var (
	ErrNotBooted    = errors.New("gm: cluster not booted")
	ErrNoSendTokens = errors.New("gm: no send tokens available")
	ErrPortClosed   = errors.New("gm: port closed")
	ErrBadArgument  = errors.New("gm: bad argument")
	// ErrPeerUnreachable rejects a send to a peer the network watchdog has
	// declared unreachable (no surviving route). The peer is readmitted
	// automatically if a later remap finds it again.
	ErrPeerUnreachable = errors.New("gm: peer unreachable")
)

// Cluster is a simulated Myrinet network: nodes (host + interface card),
// switches and cables, all driven by one deterministic discrete-event
// engine in virtual time.
type Cluster struct {
	cfg      Config
	eng      *sim.Engine
	nodes    []*Node
	switches []*Switch
	links    []*fabric.Link
	booted   bool
	mapRes   mapper.Result

	// netwatch is the network watchdog daemon (nil unless cfg.NetWatch is
	// enabled, the central plane selected, and the cluster booted).
	netwatch *core.NetWatch
	// gossipAgents holds one membership agent per node, index-aligned with
	// nodes (empty unless cfg.ControlPlane is ControlPlaneGossip and the
	// cluster booted).
	gossipAgents []*gossip.Agent
	// mapperRetries counts synchronous mapping attempts that hit the
	// convergence cap and were retried.
	mapperRetries int
	// knownIDs is the accumulated UID -> NodeID assignment across maps; it
	// seeds the mapper's prior so survivors keep their identity (streams are
	// keyed by NodeID).
	knownIDs map[uint64]gmproto.NodeID
	// missingSince records when each known interface first went missing
	// from a map. Interfaces within the UnreachableGrace window keep their
	// old routes installed (they may be mid-FTD-recovery, which makes a node
	// invisible to scouts); past it they are expelled.
	missingSince map[uint64]sim.Time
	// expelled marks interfaces declared unreachable.
	expelled map[uint64]bool
	// remapBusy guards against overlapping watchdog remap attempts.
	remapBusy bool
	// sharded marks domain mode: each node and switch owns an event domain
	// carved out of eng (cfg.Shards > 0).
	sharded bool
}

// Switch wraps a crossbar switch in the cluster.
type Switch struct {
	sw  *fabric.Switch
	eng *sim.Engine
}

// Name returns the switch's name.
func (s *Switch) Name() string { return s.sw.Name() }

// NumPorts returns the switch's port count.
func (s *Switch) NumPorts() int { return s.sw.NumPorts() }

// Stats returns a snapshot of the switch's forwarding counters.
func (s *Switch) Stats() fabric.SwitchStats { return s.sw.Stats() }

// SetPortDead kills or revives one crossbar port (chaos injection); a dead
// port neither accepts nor emits packets while the cable stays up.
func (s *Switch) SetPortDead(port int, dead bool) { s.sw.SetPortDead(port, dead) }

// PortDead reports whether a crossbar port is killed.
func (s *Switch) PortDead(port int) bool { return s.sw.PortDead(port) }

// NewCluster creates an empty cluster. With cfg.Shards > 0 the cluster runs
// in domain mode: the engine returned by Engine() is the control domain, and
// each AddNode/AddSwitch carves out its own event domain.
func NewCluster(cfg Config) *Cluster {
	c := &Cluster{
		cfg:          cfg,
		eng:          sim.NewEngine(cfg.Seed),
		knownIDs:     make(map[uint64]gmproto.NodeID),
		missingSince: make(map[uint64]sim.Time),
		expelled:     make(map[uint64]bool),
	}
	if cfg.Shards > 0 {
		c.sharded = true
		c.eng.SetShards(cfg.Shards)
		if cfg.ParallelThreshold > 0 {
			c.eng.SetParallelThreshold(cfg.ParallelThreshold)
		}
		if cfg.Speculate {
			h := cfg.SpecHorizon
			if h <= 0 {
				h = 8 * cfg.Link.PropDelay
			}
			c.eng.SetSpeculation(h)
		}
	}
	return c
}

// Sharded reports whether the cluster runs in domain mode (cfg.Shards > 0).
func (c *Cluster) Sharded() bool { return c.sharded }

// Engine exposes the simulation engine (experiment harnesses schedule
// against it; applications normally use At/After/Run).
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// EnableTrace streams component-level trace lines (switch drops, processor
// hangs, card resets, ...) to w, each stamped with the virtual time. Pass
// nil to disable.
func (c *Cluster) EnableTrace(w io.Writer) {
	if w == nil {
		c.eng.SetTrace(nil)
		return
	}
	c.eng.SetTrace(func(at sim.Time, component, format string, args ...any) {
		fmt.Fprintf(w, "[%12s] %-16s %s\n", at, component, fmt.Sprintf(format, args...))
	})
}

// Now returns the current virtual time.
func (c *Cluster) Now() Time { return c.eng.Now() }

// At schedules fn at virtual time t.
func (c *Cluster) At(t Time, fn func()) { c.eng.At(t, fn) }

// After schedules fn after d.
func (c *Cluster) After(d Duration, fn func()) { c.eng.After(d, fn) }

// Run advances the simulation by d.
func (c *Cluster) Run(d Duration) { c.eng.RunFor(d) }

// RunUntil advances the simulation to absolute time t.
func (c *Cluster) RunUntil(t Time) { c.eng.RunUntil(t) }

// Shutdown quiesces the cluster and returns every pooled packet the stack
// holds to the arena: each interface is reset (releasing its receive ring
// and any packet whose handler died with the Exec queue), then the engine
// runs for grace so packets still in flight on cables and switches land on
// the now-dead interfaces and are released there. With every processor
// stopped, no new packets can be injected. Call at the end of a trial
// before abandoning the engine; the cluster is unusable afterwards. The
// pool leak test asserts this brings fabric.PoolStats().Live back to its
// pre-trial value.
func (c *Cluster) Shutdown(grace Duration) {
	for _, a := range c.gossipAgents {
		a.Stop()
	}
	for _, n := range c.nodes {
		// Kill (not just Reset): the FTD would otherwise notice the dead
		// card during the grace window and reload it, re-injecting traffic.
		n.chip.Kill()
		n.m.Shutdown()
	}
	if grace > 0 {
		c.eng.RunFor(grace)
	}
}

// AddNode creates a node (host + LANai interface card). Its cable must
// then be connected with Connect before Boot. In domain mode the node and
// its NIC get their own event domain.
func (c *Cluster) AddNode(name string) *Node {
	eng := c.eng
	if c.sharded {
		eng = c.eng.NewDomain(name)
		if c.cfg.Speculate {
			// The whole host + NIC stack journals itself incrementally
			// (SpecTouch/SpecUndo), so the domain-level checkpoint is empty.
			eng.EnableSpeculation(specSaveNil, specRestoreNil)
		}
	}
	n := newNode(c, eng, name, len(c.nodes))
	c.nodes = append(c.nodes, n)
	return n
}

// Nodes returns the cluster's nodes in creation order.
func (c *Cluster) Nodes() []*Node { return append([]*Node(nil), c.nodes...) }

// AddSwitch creates a crossbar switch with the configured port count. In
// domain mode the switch is its own event domain (a boundary domain: every
// cable at it is a shard boundary).
func (c *Cluster) AddSwitch(name string) *Switch {
	return c.AddSwitchPorts(name, c.cfg.Switch.Ports)
}

// AddSwitchPorts creates a crossbar switch with an explicit port count
// (topology generators size leaf and spine crossbars differently).
func (c *Cluster) AddSwitchPorts(name string, ports int) *Switch {
	eng := c.eng
	if c.sharded {
		eng = c.eng.NewDomain(name)
		if c.cfg.Speculate {
			// The crossbar, its links and the packet pool journal themselves
			// (fabric/spec wiring); no eager domain checkpoint is needed.
			eng.EnableSpeculation(specSaveNil, specRestoreNil)
		}
	}
	swCfg := c.cfg.Switch
	swCfg.Ports = ports
	s := &Switch{sw: fabric.NewSwitch(eng, name, swCfg), eng: eng}
	c.switches = append(c.switches, s)
	return s
}

// Connect cables a node's interface into a switch port.
func (c *Cluster) Connect(n *Node, s *Switch, port int) error {
	if n == nil || s == nil {
		return fmt.Errorf("%w: nil node or switch", ErrBadArgument)
	}
	l := fabric.NewLinkEngines(n.eng, s.eng, c.cfg.Link, n.chip, s.sw)
	if err := s.sw.AttachLink(port, l); err != nil {
		return err
	}
	n.chip.Attach(l.EndFor(n.chip))
	n.link = l
	c.links = append(c.links, l)
	return nil
}

// ConnectSwitches cables two switches together (a trunk).
func (c *Cluster) ConnectSwitches(a, b *Switch, portA, portB int) error {
	_, err := c.ConnectSwitchesLink(a, b, portA, portB)
	return err
}

// ConnectSwitchesLink is ConnectSwitches returning the trunk's cable, so
// fault-injection harnesses can cut it.
func (c *Cluster) ConnectSwitchesLink(a, b *Switch, portA, portB int) (*fabric.Link, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("%w: nil switch", ErrBadArgument)
	}
	l := fabric.NewLinkEngines(a.eng, b.eng, c.cfg.Link, a.sw, b.sw)
	if err := a.sw.AttachLink(portA, l); err != nil {
		return nil, err
	}
	if err := b.sw.AttachLink(portB, l); err != nil {
		return nil, err
	}
	c.links = append(c.links, l)
	return l, nil
}

// Boot brings the cluster up: it loads the MCP into every interface, runs
// the GM mapper from the first node, distributes identities and route
// tables, and stores the authoritative copies in each driver for the FTD's
// use. Boot advances virtual time (MCP loads take their real ~500 ms each,
// in parallel; the mapping protocol takes a few ms more).
func (c *Cluster) Boot() (mapper.Result, error) {
	if len(c.nodes) == 0 {
		return mapper.Result{}, fmt.Errorf("%w: no nodes", ErrBadArgument)
	}
	loaded := 0
	for _, n := range c.nodes {
		// The load completion fires inside the node's domain; fold the
		// shared counter on the control domain via Control.
		eng := n.eng
		n.driver.LoadMCP(func() { eng.Control(func() { loaded++ }) })
	}
	deadline := c.eng.Now() + c.cfg.Driver.MCPLoadTime + sim.Millisecond
	c.eng.RunUntil(deadline)
	if loaded != len(c.nodes) {
		return mapper.Result{}, fmt.Errorf("gm: %d/%d MCP loads finished", loaded, len(c.nodes))
	}

	res, err := c.runMapperSync()
	if err != nil {
		return mapper.Result{}, err
	}
	if len(res.IDs) != len(c.nodes) {
		return res, fmt.Errorf("gm: mapper found %d interfaces, cluster has %d",
			len(res.IDs), len(c.nodes))
	}

	c.finishBoot(res)
	return res, nil
}

// finishBoot installs a boot-time mapping, arms the configured control
// plane and lets the config packets settle. Shared by Boot and BootStatic.
func (c *Cluster) finishBoot(res mapper.Result) {
	c.applyMapResult(res)
	c.booted = true
	switch {
	case c.cfg.ControlPlane == ControlPlaneGossip:
		c.startGossipPlane(res)
	case c.cfg.NetWatch.Enabled:
		c.netwatch = core.NewNetWatch(c.eng, c.cfg.NetWatch)
		c.netwatch.SetRemap(c.netwatchRemap)
		for _, n := range c.nodes {
			// The driver raises net-fault suspicions from the node's own
			// domain; the watchdog is control-domain state, so the report
			// crosses over via Control (inline on a legacy cluster).
			eng := n.eng
			n.driver.SetOnNetFault(func(target NodeID) {
				eng.Control(func() { c.netwatch.Suspect(target) })
			})
		}
	}
	// Let the config packets and any stragglers settle.
	c.eng.RunFor(2 * c.cfg.Mapper.RoundTimeout)
}

// gossipSeedSpace offsets the agents' DeriveRNG index range away from the
// indices other layers draw from the same cluster seed.
const gossipSeedSpace = 0x6055_0000

// startGossipPlane replicates the boot map into a membership agent on every
// node and starts the probe rounds. Everything an agent ever does —
// timers, verdicts, route installs — happens on its own node's domain
// against that node's own driver and MCP, which is why the plane needs no
// Control crossings and stays bit-for-bit identical at every shard count.
func (c *Cluster) startGossipPlane(res mapper.Result) {
	// The anchor-relative link-state database: the mapping node's own table
	// reaches every member, and the anchor itself gets the empty route.
	anchor := make(map[NodeID][]byte, len(res.IDs))
	for id, r := range res.Routes[res.MapperID] {
		anchor[id] = r
	}
	anchor[res.MapperID] = nil
	members := make([]NodeID, 0, len(c.nodes))
	for _, n := range c.nodes {
		members = append(members, c.knownIDs[n.m.UID()])
	}
	for i, n := range c.nodes {
		node := n
		id := c.knownIDs[node.m.UID()]
		// The agent seed is a pure function of (cluster seed, node index),
		// never drawn from a domain generator: the plane's schedule must not
		// depend on how the engine was sharded.
		ag := gossip.New(node.eng, c.cfg.Gossip, sim.DeriveRNG(c.cfg.Seed, gossipSeedSpace+uint64(i)).Uint64())
		ag.SetTransport(func(route, payload []byte) { node.m.RawTransmit(route, payload) })
		ag.SetHooks(gossip.Hooks{
			Dead: func(peer NodeID, routes map[NodeID][]byte) {
				node.setPeerUnreachable(peer)
				node.driver.SetRoutes(id, routes)
				node.m.UploadRoutes(routes)
			},
			Alive: func(peer NodeID, routes map[NodeID][]byte) {
				node.resetPeer(peer)
				node.driver.SetRoutes(id, routes)
				node.m.UploadRoutes(routes)
			},
		})
		node.m.SetGossipSink(ag.HandlePacket)
		// Path-health suspicions stay node-local: the stalled stream, the
		// agent and the targeted probe all live on this node's domain.
		node.driver.SetOnNetFault(ag.SuspectPath)
		ag.SeedView(id, members, anchor)
		c.gossipAgents = append(c.gossipAgents, ag)
	}
	for _, ag := range c.gossipAgents {
		ag.Start()
	}
}

// GossipAgents returns the per-node membership agents, index-aligned with
// Nodes (empty unless the gossip plane is selected and the cluster booted).
func (c *Cluster) GossipAgents() []*gossip.Agent {
	return append([]*gossip.Agent(nil), c.gossipAgents...)
}

// StaticRouteFunc supplies the route bytes from node index src to node index
// dst for BootStatic. It is never called with src == dst.
type StaticRouteFunc func(src, dst int) []byte

// BootStatic brings the cluster up with generator-computed routes instead of
// running the mapper's scout flood: MCPs load in parallel exactly as in
// Boot, then identities (NodeID = index + 1) and the supplied route tables
// are installed directly. Large regular fabrics (Clos, fat-tree) boot this
// way — the paper's mapper explores arbitrary topologies, which a
// 256-node all-to-all scout flood makes needlessly expensive when the
// generator already knows every minimal route.
func (c *Cluster) BootStatic(routes StaticRouteFunc) (mapper.Result, error) {
	if len(c.nodes) == 0 {
		return mapper.Result{}, fmt.Errorf("%w: no nodes", ErrBadArgument)
	}
	loaded := 0
	for _, n := range c.nodes {
		// The load completion fires inside the node's domain; fold the
		// shared counter on the control domain via Control.
		eng := n.eng
		n.driver.LoadMCP(func() { eng.Control(func() { loaded++ }) })
	}
	deadline := c.eng.Now() + c.cfg.Driver.MCPLoadTime + sim.Millisecond
	c.eng.RunUntil(deadline)
	if loaded != len(c.nodes) {
		return mapper.Result{}, fmt.Errorf("gm: %d/%d MCP loads finished", loaded, len(c.nodes))
	}
	res := mapper.Result{
		IDs:      make(map[uint64]gmproto.NodeID, len(c.nodes)),
		Routes:   make(map[gmproto.NodeID]map[gmproto.NodeID][]byte, len(c.nodes)),
		MapperID: 1,
	}
	for i, n := range c.nodes {
		res.IDs[n.m.UID()] = gmproto.NodeID(i + 1)
	}
	for src := range c.nodes {
		sid := gmproto.NodeID(src + 1)
		tbl := make(map[gmproto.NodeID][]byte, len(c.nodes)-1)
		for dst := range c.nodes {
			if dst == src {
				continue
			}
			r := routes(src, dst)
			if r == nil {
				return mapper.Result{}, fmt.Errorf("gm: no static route %d -> %d", src, dst)
			}
			tbl[gmproto.NodeID(dst+1)] = r
		}
		res.Routes[sid] = tbl
	}
	c.finishBoot(res)
	return res, nil
}

// Booted reports whether Boot completed.
func (c *Cluster) Booted() bool { return c.booted }

// MapResult returns the mapping produced by Boot.
func (c *Cluster) MapResult() mapper.Result { return c.mapRes }

// Remap re-runs the mapper (e.g. after a topology change) and refreshes
// every reachable driver's authoritative copy. Surviving nodes keep their
// identities (the prior assignment seeds the mapper).
func (c *Cluster) Remap() (mapper.Result, error) {
	if !c.booted {
		return mapper.Result{}, ErrNotBooted
	}
	res, err := c.runMapperSync()
	if err != nil {
		return mapper.Result{}, err
	}
	c.applyMapResult(res)
	return res, nil
}

// NetWatch returns the network watchdog daemon (nil unless enabled in the
// configuration and the cluster booted).
func (c *Cluster) NetWatch() *core.NetWatch { return c.netwatch }

// mapperCap returns the configured convergence cap.
func (c *Cluster) mapperCap() sim.Duration {
	if c.cfg.MapperConvergeTimeout > 0 {
		return c.cfg.MapperConvergeTimeout
	}
	return 10 * sim.Second
}

// mapperAttempts returns how many synchronous mapping attempts Boot and
// Remap may make in total.
func (c *Cluster) mapperAttempts() int {
	switch {
	case c.cfg.MapperRetries > 0:
		return 1 + c.cfg.MapperRetries
	case c.cfg.MapperRetries < 0:
		return 1
	default:
		return 4 // one try plus three retries
	}
}

// Backoff between synchronous mapping attempts: doubled per retry, capped.
const (
	mapperRetryBackoffBase = 50 * sim.Millisecond
	mapperRetryBackoffCap  = 500 * sim.Millisecond
)

// MapperTimeoutRetries counts the synchronous mapping attempts that hit the
// convergence cap and were retried.
func (c *Cluster) MapperTimeoutRetries() int { return c.mapperRetries }

// runMapperSync runs a mapping pass from the first node, pumping the engine
// until it converges or the cap expires. A capped attempt is retried after
// a capped backoff with twice the convergence budget — a cap hit usually
// means congestion or an unlucky flap window, not a dead fabric, and a
// one-shot failure here used to abort the whole boot. Used by Boot and
// Remap; the network watchdog, which lives *inside* simulation callbacks
// and cannot pump the engine, uses netwatchRemap instead.
func (c *Cluster) runMapperSync() (mapper.Result, error) {
	attempts := c.mapperAttempts()
	budget := c.mapperCap()
	backoff := mapperRetryBackoffBase
	for attempt := 1; ; attempt++ {
		mp := mapper.New(c.nodes[0].m, c.cfg.Mapper)
		if len(c.knownIDs) > 0 {
			mp.SetPrior(c.knownIDs)
		}
		var res mapper.Result
		var mapErr error
		finished := false
		mp.Run(func(r mapper.Result, err error) { res, mapErr, finished = r, err, true })
		deadline := c.eng.Now() + budget
		for !finished && c.eng.Now() < deadline {
			c.eng.RunFor(10 * sim.Millisecond)
		}
		if finished {
			if mapErr != nil {
				return mapper.Result{}, mapErr
			}
			return res, nil
		}
		mp.Abort()
		if attempt >= attempts {
			return mapper.Result{}, fmt.Errorf("gm: mapper did not converge (%d attempts)", attempts)
		}
		c.mapperRetries++
		c.eng.Tracef("cluster", "mapper attempt %d hit the %v cap; retrying after %v with a %v cap",
			attempt, budget, backoff, 2*budget)
		c.eng.RunFor(backoff)
		if backoff *= 2; backoff > mapperRetryBackoffCap {
			backoff = mapperRetryBackoffCap
		}
		budget *= 2
	}
}

// netwatchRemap is the watchdog's remap trigger: one asynchronous mapping
// pass, applied on completion, aborted at the convergence cap. It never
// pumps the engine (it runs inside a simulation callback).
func (c *Cluster) netwatchRemap(done func(ok bool)) {
	if c.remapBusy || len(c.nodes) == 0 {
		done(false)
		return
	}
	c.remapBusy = true
	mp := mapper.New(c.nodes[0].m, c.cfg.Mapper)
	mp.SetPrior(c.knownIDs)
	finished := false
	mapperEng := c.nodes[0].eng
	mp.Run(func(r mapper.Result, err error) {
		// The mapper completes on the mapping node's domain; applying the
		// result rewires every node, which is control-domain work.
		mapperEng.Control(func() {
			if finished {
				return
			}
			finished = true
			c.remapBusy = false
			if err != nil {
				done(false)
				return
			}
			c.applyMapResult(r)
			done(true)
		})
	})
	c.eng.AfterLabel(c.mapperCap(), "netwatch-remap-cap", func() {
		if finished {
			return
		}
		finished = true
		c.remapBusy = false
		mp.Abort()
		done(false)
	})
}

// applyMapResult installs a mapping into the cluster: driver authoritative
// copies and MCP tables for every mapped node, identity bookkeeping, and the
// unreachable/readmission state machine for nodes the map lost or regained.
func (c *Cluster) applyMapResult(res mapper.Result) {
	now := c.eng.Now()
	for uid, id := range res.IDs {
		c.knownIDs[uid] = id
	}

	// Classify this cluster's nodes against the map. Slice iteration keeps
	// event order deterministic.
	var toExpel, toReadmit []*Node
	for _, n := range c.nodes {
		uid := n.m.UID()
		if _, present := res.IDs[uid]; present {
			delete(c.missingSince, uid)
			if c.expelled[uid] {
				toReadmit = append(toReadmit, n)
			}
			continue
		}
		if c.expelled[uid] {
			continue
		}
		if _, known := c.knownIDs[uid]; !known {
			continue // never mapped; not our member (or pre-boot)
		}
		first, tracked := c.missingSince[uid]
		if !tracked {
			c.missingSince[uid] = now
			continue
		}
		if now-first >= c.cfg.NetWatch.UnreachableGrace {
			toExpel = append(toExpel, n)
		}
	}

	// Install the tables. A missing-but-in-grace peer (possibly mid-FTD-
	// recovery, invisible to scouts) keeps its old route in every table so
	// traffic toward it resumes the moment it comes back — the mapper's
	// in-band config replaced the MCP tables wholesale, so the merged table
	// is re-uploaded directly.
	for _, n := range c.nodes {
		uid := n.m.UID()
		id, present := res.IDs[uid]
		if !present {
			continue
		}
		tbl := make(map[NodeID][]byte, len(res.Routes[id]))
		for dest, r := range res.Routes[id] {
			tbl[dest] = r
		}
		old := n.driver.Routes()
		for guid := range c.missingSince {
			gid, known := c.knownIDs[guid]
			if !known || gid == id {
				continue
			}
			if _, have := tbl[gid]; have {
				continue
			}
			if r, ok := old[gid]; ok {
				tbl[gid] = r
			}
		}
		n.driver.SetRoutes(id, tbl)
		n.m.SetNodeID(id)
		n.m.UploadRoutes(tbl)
	}

	for _, n := range toExpel {
		c.expelNode(n)
	}
	for _, n := range toReadmit {
		c.readmitNode(n)
	}
	c.mapRes = res
}

// expelNode declares a node unreachable: every peer's pending and future
// sends toward it fail terminally (ErrPeerUnreachable / SendErrorUnreachable)
// instead of retransmitting forever, and symmetrically its own sends fail.
func (c *Cluster) expelNode(x *Node) {
	uid := x.m.UID()
	c.expelled[uid] = true
	delete(c.missingSince, uid)
	xid := c.knownIDs[uid]
	c.eng.Tracef("cluster", "node %s (id %d) declared unreachable", x.name, xid)
	for _, n := range c.nodes {
		if n == x {
			continue
		}
		n.setPeerUnreachable(xid)
		x.setPeerUnreachable(c.knownIDs[n.m.UID()])
	}
	if c.netwatch != nil {
		c.netwatch.NoteUnreachable()
	}
}

// readmitNode welcomes an expelled node back: the unreachable marks clear
// and the sequence streams between it and every peer reset in both
// directions — its terminal failures left gaps in the old streams, so
// first contact restarts each stream at sequence 1.
func (c *Cluster) readmitNode(x *Node) {
	uid := x.m.UID()
	delete(c.expelled, uid)
	xid := c.knownIDs[uid]
	c.eng.Tracef("cluster", "node %s (id %d) readmitted", x.name, xid)
	for _, n := range c.nodes {
		if n == x {
			continue
		}
		n.resetPeer(xid)
		x.resetPeer(c.knownIDs[n.m.UID()])
	}
	if c.netwatch != nil {
		c.netwatch.NoteReadmitted()
	}
}
