package gm

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/fabric"
	"repro/internal/mapper"
	"repro/internal/sim"
)

// Time and Duration re-export the virtual time types.
type (
	// Time is a virtual timestamp.
	Time = sim.Time
	// Duration is a span of virtual time.
	Duration = sim.Duration
)

// Common durations re-exported for application code.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Errors reported by cluster assembly and the port API.
var (
	ErrNotBooted    = errors.New("gm: cluster not booted")
	ErrNoSendTokens = errors.New("gm: no send tokens available")
	ErrPortClosed   = errors.New("gm: port closed")
	ErrBadArgument  = errors.New("gm: bad argument")
)

// Cluster is a simulated Myrinet network: nodes (host + interface card),
// switches and cables, all driven by one deterministic discrete-event
// engine in virtual time.
type Cluster struct {
	cfg      Config
	eng      *sim.Engine
	nodes    []*Node
	switches []*Switch
	links    []*fabric.Link
	booted   bool
	mapRes   mapper.Result
}

// Switch wraps a crossbar switch in the cluster.
type Switch struct {
	sw *fabric.Switch
}

// Name returns the switch's name.
func (s *Switch) Name() string { return s.sw.Name() }

// NumPorts returns the switch's port count.
func (s *Switch) NumPorts() int { return s.sw.NumPorts() }

// Stats returns a snapshot of the switch's forwarding counters.
func (s *Switch) Stats() fabric.SwitchStats { return s.sw.Stats() }

// SetPortDead kills or revives one crossbar port (chaos injection); a dead
// port neither accepts nor emits packets while the cable stays up.
func (s *Switch) SetPortDead(port int, dead bool) { s.sw.SetPortDead(port, dead) }

// PortDead reports whether a crossbar port is killed.
func (s *Switch) PortDead(port int) bool { return s.sw.PortDead(port) }

// NewCluster creates an empty cluster.
func NewCluster(cfg Config) *Cluster {
	return &Cluster{cfg: cfg, eng: sim.NewEngine(cfg.Seed)}
}

// Engine exposes the simulation engine (experiment harnesses schedule
// against it; applications normally use At/After/Run).
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// EnableTrace streams component-level trace lines (switch drops, processor
// hangs, card resets, ...) to w, each stamped with the virtual time. Pass
// nil to disable.
func (c *Cluster) EnableTrace(w io.Writer) {
	if w == nil {
		c.eng.SetTrace(nil)
		return
	}
	c.eng.SetTrace(func(at sim.Time, component, format string, args ...any) {
		fmt.Fprintf(w, "[%12s] %-16s %s\n", at, component, fmt.Sprintf(format, args...))
	})
}

// Now returns the current virtual time.
func (c *Cluster) Now() Time { return c.eng.Now() }

// At schedules fn at virtual time t.
func (c *Cluster) At(t Time, fn func()) { c.eng.At(t, fn) }

// After schedules fn after d.
func (c *Cluster) After(d Duration, fn func()) { c.eng.After(d, fn) }

// Run advances the simulation by d.
func (c *Cluster) Run(d Duration) { c.eng.RunFor(d) }

// RunUntil advances the simulation to absolute time t.
func (c *Cluster) RunUntil(t Time) { c.eng.RunUntil(t) }

// AddNode creates a node (host + LANai interface card). Its cable must
// then be connected with Connect before Boot.
func (c *Cluster) AddNode(name string) *Node {
	n := newNode(c, name, len(c.nodes))
	c.nodes = append(c.nodes, n)
	return n
}

// Nodes returns the cluster's nodes in creation order.
func (c *Cluster) Nodes() []*Node { return append([]*Node(nil), c.nodes...) }

// AddSwitch creates a crossbar switch.
func (c *Cluster) AddSwitch(name string) *Switch {
	s := &Switch{sw: fabric.NewSwitch(c.eng, name, c.cfg.Switch)}
	c.switches = append(c.switches, s)
	return s
}

// Connect cables a node's interface into a switch port.
func (c *Cluster) Connect(n *Node, s *Switch, port int) error {
	if n == nil || s == nil {
		return fmt.Errorf("%w: nil node or switch", ErrBadArgument)
	}
	l := fabric.NewLink(c.eng, c.cfg.Link, n.chip, s.sw)
	if err := s.sw.AttachLink(port, l); err != nil {
		return err
	}
	n.chip.Attach(l.EndFor(n.chip))
	n.link = l
	c.links = append(c.links, l)
	return nil
}

// ConnectSwitches cables two switches together (a trunk).
func (c *Cluster) ConnectSwitches(a, b *Switch, portA, portB int) error {
	if a == nil || b == nil {
		return fmt.Errorf("%w: nil switch", ErrBadArgument)
	}
	l := fabric.NewLink(c.eng, c.cfg.Link, a.sw, b.sw)
	if err := a.sw.AttachLink(portA, l); err != nil {
		return err
	}
	if err := b.sw.AttachLink(portB, l); err != nil {
		return err
	}
	c.links = append(c.links, l)
	return nil
}

// Boot brings the cluster up: it loads the MCP into every interface, runs
// the GM mapper from the first node, distributes identities and route
// tables, and stores the authoritative copies in each driver for the FTD's
// use. Boot advances virtual time (MCP loads take their real ~500 ms each,
// in parallel; the mapping protocol takes a few ms more).
func (c *Cluster) Boot() (mapper.Result, error) {
	if len(c.nodes) == 0 {
		return mapper.Result{}, fmt.Errorf("%w: no nodes", ErrBadArgument)
	}
	loaded := 0
	for _, n := range c.nodes {
		n.driver.LoadMCP(func() { loaded++ })
	}
	deadline := c.eng.Now() + c.cfg.Driver.MCPLoadTime + sim.Millisecond
	c.eng.RunUntil(deadline)
	if loaded != len(c.nodes) {
		return mapper.Result{}, fmt.Errorf("gm: %d/%d MCP loads finished", loaded, len(c.nodes))
	}

	var res mapper.Result
	var mapErr error
	finished := false
	mapper.New(c.nodes[0].m, c.cfg.Mapper).Run(func(r mapper.Result, err error) {
		res, mapErr, finished = r, err, true
	})
	// The mapping protocol is timeout-driven; give it ample virtual time.
	for i := 0; i < 1000 && !finished; i++ {
		c.eng.RunFor(10 * sim.Millisecond)
	}
	if !finished {
		return mapper.Result{}, errors.New("gm: mapper did not converge")
	}
	if mapErr != nil {
		return mapper.Result{}, mapErr
	}
	if len(res.IDs) != len(c.nodes) {
		return res, fmt.Errorf("gm: mapper found %d interfaces, cluster has %d",
			len(res.IDs), len(c.nodes))
	}

	// Authoritative host copies for recovery (§4.3: the FTD restores "the
	// mapping and routing table information").
	for _, n := range c.nodes {
		id := res.IDs[n.m.UID()]
		n.driver.SetRoutes(id, res.Routes[id])
	}
	c.mapRes = res
	c.booted = true
	// Let the config packets and any stragglers settle.
	c.eng.RunFor(2 * c.cfg.Mapper.RoundTimeout)
	return res, nil
}

// Booted reports whether Boot completed.
func (c *Cluster) Booted() bool { return c.booted }

// MapResult returns the mapping produced by Boot.
func (c *Cluster) MapResult() mapper.Result { return c.mapRes }

// Remap re-runs the mapper (e.g. after a topology change) and refreshes
// every reachable driver's authoritative copy.
func (c *Cluster) Remap() (mapper.Result, error) {
	if !c.booted {
		return mapper.Result{}, ErrNotBooted
	}
	var res mapper.Result
	var mapErr error
	finished := false
	mapper.New(c.nodes[0].m, c.cfg.Mapper).Run(func(r mapper.Result, err error) {
		res, mapErr, finished = r, err, true
	})
	for i := 0; i < 1000 && !finished; i++ {
		c.eng.RunFor(10 * sim.Millisecond)
	}
	if !finished {
		return mapper.Result{}, errors.New("gm: mapper did not converge")
	}
	if mapErr != nil {
		return mapper.Result{}, mapErr
	}
	for _, n := range c.nodes {
		if id, ok := res.IDs[n.m.UID()]; ok {
			n.driver.SetRoutes(id, res.Routes[id])
		}
	}
	c.mapRes = res
	return res, nil
}
