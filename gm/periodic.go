package gm

import (
	"fmt"
	"slices"

	"repro/internal/ckpt"
	"repro/internal/gmproto"
	"repro/internal/sim"
)

// Periodic background checkpointing: an incremental extension of the §4.1
// recovery anchor. Node.Checkpoint cuts a full anchor but demands a fully
// drained endpoint, which a busy node may never offer. This file keeps the
// anchor continuously fresh instead: a base frame is cut at the first
// drained instant, then every interval the library freezes only the ports
// whose checkpointable state changed (cheap epoch-stamped dirty bits, the
// SpecTouch first-touch pattern), waits — bounded by a drain budget — for
// their host-side dispatchers to empty, and emits a delta frame carrying
// just the dirty sections. The freeze reuses the delayed-ACK machinery
// (mcp.FreezePort): parked deliveries are pre-commit and stay covered by
// the senders' Go-Back-N windows, so a frame cut under a partial drain is
// exactly as consistent as a full Checkpoint. Replaying base+deltas through
// ckpt.ReplayChain reproduces, bit for bit, the Checkpoint a drained node
// would have produced at the same instant (DESIGN.md §17).

// FrameKind distinguishes the two frame types a periodic sink receives.
type FrameKind uint8

const (
	// FrameBase is a full ckpt.Checkpoint wire frame (chain position 0).
	FrameBase FrameKind = iota
	// FrameDelta is a ckpt.Delta wire frame extending the chain.
	FrameDelta
)

// PeriodicFrame is one emitted chain frame. Bytes aliases the node's pooled
// encode buffer and is valid only during the sink call: a sink that retains
// the frame (shipping it to stable storage, appending it to a chain) must
// copy. Pause is the drain pause this frame cost the endpoint (zero for the
// base frame, which waits for a natural drained instant instead of forcing
// one).
type PeriodicFrame struct {
	Kind  FrameKind
	Seq   uint64
	Bytes []byte
	Pause sim.Duration
	At    sim.Time
}

// PeriodicSink consumes emitted frames. It runs inside the node's event
// domain at frame-commit time and must not call back into the node's
// checkpoint machinery.
type PeriodicSink func(PeriodicFrame)

// PeriodicStats counts the periodic checkpointer's activity.
type PeriodicStats struct {
	Frames     uint64 // frames delivered (base + deltas)
	Skips      uint64 // intervals abandoned at the drain budget
	CleanTicks uint64 // intervals with nothing dirty (no freeze, no frame)
	Bytes      uint64 // total encoded frame bytes
	MaxPause   sim.Duration
	TotalPause sim.Duration
}

// periodicState is the journaled portion of the checkpointer: everything a
// speculative rollback must restore. The encode arenas live outside it —
// re-execution rebuilds them deterministically.
type periodicState struct {
	active   bool
	baseDone bool
	// emitting marks an interval mid-drain: dirty ports are frozen and a
	// poll is scheduled.
	emitting bool
	// gen is the node's reviveGen at Start: a Kill strands the machinery.
	gen uint64
	// seq/prevCRC position the next delta in the chain.
	seq     uint64
	prevCRC uint32
	// routesVer is the driver's route-table version captured by the last
	// frame; a mismatch puts a full route replacement in the next delta.
	routesVer uint64
	// drainStart/deadline bound the current drain (valid while emitting).
	drainStart sim.Time
	deadline   sim.Time
	stats      PeriodicStats
	// inPrev marks ports present (open) in the chain's current tip;
	// removedSince marks ports closed since the last frame.
	inPrev       [MaxPorts]bool
	removedSince [MaxPorts]bool
}

// periodicCkpt drives one node's periodic checkpointing. The arenas below
// the state block are pooled: after the first few frames a steady-state
// delta build and encode allocates nothing.
type periodicCkpt struct {
	n        *Node
	interval sim.Duration
	budget   sim.Duration
	pollStep sim.Duration
	sink     PeriodicSink
	s        periodicState

	// Encode arenas (not journaled; rebuilt deterministically on replay).
	delta   ckpt.Delta
	basebuf []byte
	dbuf    [2][]byte // parity double-buffer: delta seq s encodes into dbuf[s&1]
	ids     []NodeID
	streams []gmproto.StreamID
	recvs   []gmproto.RecvToken

	// Scheduled-event closures, built once so rescheduling never allocates.
	tickFn func()
	pollFn func()
	baseFn func()
}

// StartPeriodicCheckpoint begins background checkpointing: a base frame is
// cut at the first drained instant, then every interval a delta frame is
// emitted if anything changed, freezing only the dirty ports and pausing
// the endpoint for at most drainBudget. Frames go to sink in chain order.
// An interval whose dirty ports cannot drain inside the budget is skipped
// (counted in PeriodicStats.Skips); its changes ride the next frame.
func (n *Node) StartPeriodicCheckpoint(interval, drainBudget sim.Duration, sink PeriodicSink) error {
	if n.dead {
		return ErrNodeDead
	}
	if interval <= 0 || drainBudget <= 0 || sink == nil {
		return fmt.Errorf("%w: periodic checkpoint interval %v budget %v", ErrBadArgument, interval, drainBudget)
	}
	if n.pc != nil && n.pc.s.active {
		return fmt.Errorf("%w: periodic checkpointing already active", ErrBadArgument)
	}
	n.specTouch()
	pc := &periodicCkpt{n: n, interval: interval, budget: drainBudget, sink: sink}
	pc.pollStep = drainBudget / 8
	if pc.pollStep <= 0 {
		pc.pollStep = 1
	}
	pc.s.active = true
	pc.s.gen = n.reviveGen
	pc.tickFn = pc.tick
	pc.pollFn = pc.poll
	pc.baseFn = pc.baseHunt
	n.pc = pc
	n.eng.After(0, pc.baseFn)
	return nil
}

// StopPeriodicCheckpoint halts background checkpointing, thawing any port
// frozen mid-drain. Stats remain readable until the next Start.
func (n *Node) StopPeriodicCheckpoint() {
	pc := n.pc
	if pc == nil || !pc.s.active {
		return
	}
	n.specTouch()
	pc.s.active = false
	pc.s.emitting = false
	if !n.dead {
		pc.thawAll()
		n.rxAcks.StopDirtyTracking()
	}
}

// PeriodicCheckpointStats returns the checkpointer's counters (zero value
// if StartPeriodicCheckpoint was never called).
func (n *Node) PeriodicCheckpointStats() PeriodicStats {
	if n.pc == nil {
		return PeriodicStats{}
	}
	return n.pc.s.stats
}

// ForceCheckpointFrame synchronously emits a delta frame capturing every
// change since the chain tip, if any. The node must be drained (the caller
// is typically a harness that hunted a drained instant, exactly as it would
// for Checkpoint). Returns the encoded frame — aliasing the pooled buffer,
// valid until the next emission — and whether a frame was emitted; a clean
// tip emits nothing and returns emitted=false with the chain already
// current. An in-flight bounded drain is cancelled in favor of the forced
// frame.
func (n *Node) ForceCheckpointFrame() ([]byte, bool, error) {
	pc := n.pc
	if pc == nil || !pc.s.active || !pc.s.baseDone {
		return nil, false, fmt.Errorf("%w: periodic checkpointing not running", ErrBadArgument)
	}
	if n.dead {
		return nil, false, ErrNodeDead
	}
	if !n.Drained() {
		return nil, false, ErrNotDrained
	}
	n.specTouch()
	if pc.s.emitting {
		// Cancel the bounded drain: the scheduled poll goes inert through
		// the emitting flag, so the tick chain must be re-armed here.
		pc.s.emitting = false
		pc.thawAll()
		n.eng.After(pc.interval, pc.tickFn)
	}
	if !pc.dirtyAny() {
		return nil, false, nil
	}
	pc.emitDelta(0)
	return pc.dbuf[pc.s.seq&1], true, nil
}

// live reports whether this checkpointer instance still owns the node: a
// Kill (generation bump), a Stop, or a replacement Start strands scheduled
// events of the old instance.
func (pc *periodicCkpt) live() bool {
	n := pc.n
	return pc.s.active && !n.dead && n.reviveGen == pc.s.gen && n.pc == pc
}

// baseHunt polls for the first drained instant and cuts the base frame.
func (pc *periodicCkpt) baseHunt() {
	n := pc.n
	if !pc.live() {
		return
	}
	n.specTouch()
	ck, err := n.Checkpoint()
	if err != nil {
		n.eng.After(pc.pollStep, pc.baseFn)
		return
	}
	pc.basebuf = ck.AppendTo(pc.basebuf[:0])
	pc.s.baseDone = true
	pc.s.seq = 0
	pc.s.prevCRC = ckpt.TrailingCRC(pc.basebuf)
	pc.s.routesVer = n.driver.RoutesVersion()
	// Open the first dirty epoch: marks stamped before this instant (or by
	// a previous Start) compare unequal and read clean.
	n.ckptEpoch++
	n.rxAcks.StartDirtyTracking()
	pc.s.inPrev = [MaxPorts]bool{}
	for id, p := range n.ports {
		if p.open {
			pc.s.inPrev[id] = true
		}
	}
	pc.s.removedSince = [MaxPorts]bool{}
	pc.s.stats.Frames++
	pc.s.stats.Bytes += uint64(len(pc.basebuf))
	pc.deliver(FrameBase, 0, pc.basebuf, 0)
	n.eng.After(pc.interval, pc.tickFn)
}

// tick opens an interval: nothing dirty means no freeze and no frame;
// otherwise the dirty ports are frozen and the bounded drain begins.
func (pc *periodicCkpt) tick() {
	n := pc.n
	if !pc.live() {
		return
	}
	n.specTouch()
	if pc.s.emitting {
		return
	}
	if !pc.dirtyAny() {
		pc.s.stats.CleanTicks++
		n.eng.After(pc.interval, pc.tickFn)
		return
	}
	pc.s.emitting = true
	pc.s.drainStart = n.eng.Now()
	pc.s.deadline = pc.s.drainStart + pc.budget
	pc.poll()
}

// poll advances the bounded drain: freeze any port dirtied since the last
// step, emit once the dirty ports are quiet, abandon the interval at the
// deadline. The reschedule step never overshoots the deadline, so the
// endpoint's pause is bounded by the drain budget.
func (pc *periodicCkpt) poll() {
	n := pc.n
	if !pc.live() {
		return
	}
	n.specTouch()
	if !pc.s.emitting {
		return // forced emission or Stop landed under the scheduled poll
	}
	pc.freezeDirty()
	now := n.eng.Now()
	if pc.quiet() {
		pc.emitDelta(now - pc.s.drainStart)
		pc.finishInterval()
		return
	}
	if now >= pc.s.deadline {
		pause := now - pc.s.drainStart
		pc.s.stats.Skips++
		if pause > pc.s.stats.MaxPause {
			pc.s.stats.MaxPause = pause
		}
		pc.s.stats.TotalPause += pause
		// No epoch advance: the dirty marks carry into the next interval.
		pc.finishInterval()
		return
	}
	step := pc.pollStep
	if rem := pc.s.deadline - now; rem < step {
		step = rem
	}
	n.eng.After(step, pc.pollFn)
}

// finishInterval closes the drain (frame emitted or interval skipped),
// resumes parked deliveries and arms the next tick.
func (pc *periodicCkpt) finishInterval() {
	pc.s.emitting = false
	pc.thawAll()
	pc.n.eng.After(pc.interval, pc.tickFn)
}

// dirtyPort reports whether a port's checkpointable state differs from the
// chain tip: never captured, closed-and-reopened, or stamped this epoch.
func (pc *periodicCkpt) dirtyPort(p *Port) bool {
	if !p.open {
		return false
	}
	id := int(p.id)
	return !pc.s.inPrev[id] || pc.s.removedSince[id] || p.ckptMark == pc.n.ckptEpoch
}

// dirtyAny reports whether the next frame would carry anything.
func (pc *periodicCkpt) dirtyAny() bool {
	n := pc.n
	if n.driver.RoutesVersion() != pc.s.routesVer {
		return true
	}
	if n.rxAcks.Replaced() || n.rxAcks.DirtyLen() > 0 {
		return true
	}
	for id := range pc.s.removedSince {
		if pc.s.removedSince[id] && pc.s.inPrev[id] {
			return true
		}
	}
	for _, p := range n.ports {
		if pc.dirtyPort(p) {
			return true
		}
	}
	return false
}

// freezeDirty parks delivery on every dirty port (mcp.FreezePort: arrivals
// queue pre-commit, no host table advances, no ACK leaves — the senders'
// Go-Back-N windows keep covering the parked messages).
func (pc *periodicCkpt) freezeDirty() {
	n := pc.n
	for _, p := range n.ports {
		if pc.dirtyPort(p) && !n.m.Frozen(p.id) {
			n.m.FreezePort(p.id)
		}
	}
}

// thawAll resumes delivery on every frozen port, replaying parked arrivals
// in order.
func (pc *periodicCkpt) thawAll() {
	n := pc.n
	for _, p := range n.ports {
		if n.m.Frozen(p.id) {
			n.m.ThawPort(p.id)
		}
	}
}

// quiet reports whether every dirty port has reached its freeze point: the
// port is frozen (no further commits can land) and its host-side pipeline —
// deferred dispatchers, poll queue, recovery handler — is empty. Clean
// ports keep running; whatever they commit before the emission instant is
// stamped dirty and re-checked by the caller's freezeDirty pass.
func (pc *periodicCkpt) quiet() bool {
	n := pc.n
	if n.pendingRecoveries > 0 {
		return false
	}
	for _, p := range n.ports {
		if !pc.dirtyPort(p) {
			continue
		}
		if !n.m.Frozen(p.id) || p.recovering || len(p.pollQueue) > 0 ||
			p.tokPend.Pending() > 0 || p.recvPend.Pending() > 0 ||
			p.cbPend.Pending() > 0 || p.postPend.Pending() > 0 {
			return false
		}
	}
	return true
}

// emitDelta builds, encodes and delivers the next chain frame from the
// dirty state, then opens the next epoch. Steady state allocates nothing:
// the Delta arena, the scratch slices and the parity-selected encode buffer
// all keep their capacity across frames.
func (pc *periodicCkpt) emitDelta(pause sim.Duration) {
	n := pc.n
	pc.buildDelta()
	seq := pc.s.seq + 1
	b := pc.delta.AppendTo(pc.dbuf[seq&1][:0])
	pc.dbuf[seq&1] = b
	pc.s.seq = seq
	pc.s.prevCRC = ckpt.TrailingCRC(b)
	pc.s.routesVer = n.driver.RoutesVersion()
	n.ckptEpoch++
	n.rxAcks.NextDirtyEpoch()
	for id := range pc.s.inPrev {
		p := n.ports[PortID(id)]
		pc.s.inPrev[id] = p != nil && p.open
		pc.s.removedSince[id] = false
	}
	pc.s.stats.Frames++
	pc.s.stats.Bytes += uint64(len(b))
	if pause > pc.s.stats.MaxPause {
		pc.s.stats.MaxPause = pause
	}
	pc.s.stats.TotalPause += pause
	pc.deliver(FrameDelta, seq, b, pause)
}

// buildDelta fills the pooled Delta with every section that changed since
// the chain tip. Each section mirrors Node.Checkpoint exactly — same field
// sources, same sort orders — so a replayed chain re-encodes bit-identical
// to a fresh checkpoint cut at the same instant.
func (pc *periodicCkpt) buildDelta() {
	n := pc.n
	d := &pc.delta
	d.Reset()
	d.UID = n.m.UID()
	d.NodeID = n.m.NodeID()
	d.Seq = pc.s.seq + 1
	d.PrevCRC = pc.s.prevCRC

	if n.driver.RoutesVersion() != pc.s.routesVer {
		d.RoutesReplaced = true
		routes := n.driver.Routes()
		pc.ids = pc.ids[:0]
		for id := range routes {
			pc.ids = append(pc.ids, id)
		}
		slices.Sort(pc.ids)
		for _, id := range pc.ids {
			// Hops aliases the live route; Delta.AppendTo copies.
			d.Routes = append(d.Routes, ckpt.Route{Node: id, Hops: routes[id]})
		}
	}

	pc.streams = pc.streams[:0]
	if n.rxAcks.Replaced() {
		d.RxReplaceAll = true
		pc.streams = n.rxAcks.AppendAllStreams(pc.streams)
	} else {
		pc.streams = n.rxAcks.AppendDirtyStreams(pc.streams)
	}
	for _, id := range pc.streams {
		d.RxAcks = append(d.RxAcks, ckpt.RxAck{Stream: id, Seq: n.rxAcks.Last(id)})
	}

	for id := PortID(0); int(id) < MaxPorts; id++ {
		if pc.s.inPrev[id] && pc.s.removedSince[id] {
			// Closed since the tip. A reopen inside the interval also lands
			// in Ports below; Apply processes removals first.
			d.Removed = append(d.Removed, id)
		}
		p := n.ports[id]
		if p == nil || !pc.dirtyPort(p) {
			continue
		}
		fresh := !pc.s.inPrev[id] || pc.s.removedSince[id]
		pd := d.NextPort()
		pd.Port = id
		pd.NextToken = p.nextToken
		pd.NextRegion = p.nextRegion
		pd.SendTokens = p.shadow.AppendOutstandingSends(pd.SendTokens[:0])
		pc.recvs = p.shadow.AppendOutstandingRecvs(pc.recvs[:0])
		pd.RecvTokens = pd.RecvTokens[:0]
		for _, rt := range pc.recvs {
			pd.RecvTokens = append(pd.RecvTokens, ckpt.RecvTokenCheckpoint{
				ID: rt.ID, Size: rt.Size, Prio: rt.Prio, BufLen: uint32(len(rt.Buf)),
			})
		}
		pd.SeqStreams = p.shadow.AppendSeqStreams(pd.SeqStreams[:0])
		pd.Regions = pd.Regions[:0]
		for i, r := range p.regions {
			rd := pd.NextRegionDelta()
			rd.ID = r.ID
			rd.Dirty = fresh || (i < len(p.regionMarks) && p.regionMarks[i] == n.ckptEpoch)
			if rd.Dirty {
				rd.Data = r.Buf // AppendTo copies
			} else {
				rd.Data = nil
			}
		}
	}
}

// deliver hands a frame to the sink. Conservative execution calls the sink
// inline with the pooled bytes (zero-copy, zero-alloc); a speculating node
// domain defers through the commit queue with a private copy, because the
// pooled buffer may be rebuilt before the span's barrier resolves.
func (pc *periodicCkpt) deliver(kind FrameKind, seq uint64, frame []byte, pause sim.Duration) {
	n := pc.n
	if n.eng.SpecActive() {
		f := &PeriodicFrame{
			Kind: kind, Seq: seq,
			Bytes: append([]byte(nil), frame...),
			Pause: pause, At: n.eng.Now(),
		}
		n.eng.SpecOnCommit(periodicDeliver, pc, f, 0, 0)
		return
	}
	pc.sink(PeriodicFrame{Kind: kind, Seq: seq, Bytes: frame, Pause: pause, At: n.eng.Now()})
}

// periodicDeliver is the commit-queue trampoline for deliver (package-level:
// a closure in the hot path would allocate per record).
func periodicDeliver(a, b any, _, _ uint64) {
	pc := a.(*periodicCkpt)
	pc.sink(*b.(*PeriodicFrame))
}

// --- dirty-bit stamps (called from the library's mutation sites) ---

// markCkpt stamps the port dirty for the current checkpoint epoch. Inactive
// tracking costs one pointer test; the stamp itself is a single store, the
// same first-touch shape as SpecTouch.
func (p *Port) markCkpt() {
	n := p.node
	if n.pc == nil || !n.pc.s.active {
		return
	}
	p.ckptMark = n.ckptEpoch
}

// markRegion stamps a directed-deposit target region (and the port) dirty.
// regionMarks parallels regions by index; an entry missing because the
// region was registered while tracking was off is padded on first deposit.
func (p *Port) markRegion(regionID uint32) {
	n := p.node
	if n.pc == nil || !n.pc.s.active {
		return
	}
	p.ckptMark = n.ckptEpoch
	for i, r := range p.regions {
		if r.ID != regionID {
			continue
		}
		if i < len(p.regionMarks) {
			p.regionMarks[i] = n.ckptEpoch
			return
		}
		for len(p.regionMarks) < i {
			p.regionMarks = append(p.regionMarks, 0)
		}
		p.regionMarks = append(p.regionMarks, n.ckptEpoch)
		return
	}
}

// markNewRegion stamps a just-registered region dirty (its bytes have never
// been in a frame). Call after appending to p.regions.
func (p *Port) markNewRegion() {
	n := p.node
	if n.pc == nil || !n.pc.s.active {
		return
	}
	p.ckptMark = n.ckptEpoch
	for len(p.regionMarks) < len(p.regions)-1 {
		p.regionMarks = append(p.regionMarks, 0)
	}
	if len(p.regionMarks) < len(p.regions) {
		p.regionMarks = append(p.regionMarks, n.ckptEpoch)
	}
}
