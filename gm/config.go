// Package gm is the user-facing library of the Myrinet/GM reproduction: a
// deterministic simulation of a Myrinet cluster (hosts, LANai interface
// cards, switches, links) carrying GM's connectionless, token-flow-
// controlled, reliable ordered messaging — plus the paper's FTGM fault
// tolerance: continuous host-side state backup, a software watchdog that
// detects network-processor hangs, and transparent recovery driven by a
// fault-tolerance daemon (Lakamraju, Koren, Krishna, DSN 2003).
//
// The API mirrors GM's programming model (§3.1 of the paper): a process
// opens a port, provides receive buffers (relinquishing receive tokens),
// sends with a callback (relinquishing a send token), and gets tokens back
// through events. Fault recovery is completely transparent: applications
// written against this API need no changes to survive interface hangs when
// the cluster runs in FTGM mode — the library's internal handling of the
// FAULT_DETECTED event (the gm_unknown() path, §4.4) restores all state.
//
// Everything runs in virtual time on a discrete-event engine; see Cluster.
package gm

import (
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/gmproto"
	"repro/internal/gossip"
	"repro/internal/host"
	"repro/internal/lanai"
	"repro/internal/mapper"
	"repro/internal/mcp"
	"repro/internal/sim"
)

// Re-exported protocol types, so applications only import gm.
type (
	// NodeID identifies an interface after mapping.
	NodeID = gmproto.NodeID
	// PortID identifies one of the 8 GM ports of a node.
	PortID = gmproto.PortID
	// Priority is a GM message priority level.
	Priority = gmproto.Priority
	// SendStatus reports a send outcome to its callback.
	SendStatus = gmproto.SendStatus
)

// Re-exported constants.
const (
	PriorityLow  = gmproto.PriorityLow
	PriorityHigh = gmproto.PriorityHigh
	SendOK       = gmproto.SendOK
	MaxPorts     = gmproto.MaxPorts

	// Terminal send statuses a callback may observe.
	SendErrorDropped     = gmproto.SendErrorDropped
	SendErrorClosed      = gmproto.SendErrorClosed
	SendErrorUnreachable = gmproto.SendErrorUnreachable
)

// Mode selects stock GM or the paper's FTGM.
type Mode = mcp.Mode

// Modes.
const (
	ModeGM   = mcp.ModeGM
	ModeFTGM = mcp.ModeFTGM
)

// ControlPlane selects who repairs membership and routes after boot.
type ControlPlane int

// Control planes.
const (
	// ControlPlaneCentral is the classic plane: the network watchdog on the
	// mapping node re-runs the mapper and pushes fresh tables to everyone.
	// One coordinator, one repair path — and both die with node 0.
	ControlPlaneCentral ControlPlane = iota
	// ControlPlaneGossip replaces the central watchdog with a SWIM-style
	// membership agent on every node (internal/gossip): distributed probe
	// rounds, agreement-based expulsion and readmission, and local route
	// recomputation from a replicated link-state view. No single node's
	// death can take the repair path with it.
	ControlPlaneGossip
)

// String names the plane.
func (p ControlPlane) String() string {
	if p == ControlPlaneGossip {
		return "gossip"
	}
	return "central"
}

// HostConfig holds the host-side (library) timing constants. The GM values
// are from Myricom's published measurements quoted in §5.1; the FTGM deltas
// are the token-housekeeping costs the paper reports.
type HostConfig struct {
	// SendOverhead is the host-CPU cost of posting a send (~0.30 µs).
	SendOverhead sim.Duration
	// RecvOverhead is the host-CPU cost of receiving (~0.75 µs).
	RecvOverhead sim.Duration
	// ProvideOverhead is the host-CPU cost of providing a receive buffer.
	ProvideOverhead sim.Duration
	// FTGMSendExtra is FTGM's extra send cost: the shadow send-token copy
	// and sequence generation (~0.25 µs, §5.1).
	FTGMSendExtra sim.Duration
	// FTGMRecvExtra is FTGM's extra receive cost: updating the recv-token
	// hash table and the per-stream ACK-number hash table (~0.4 µs, §5.1).
	FTGMRecvExtra sim.Duration

	// SendTokens is the number of send tokens a process starts with per
	// port (§3.1: "a process starts out with a fixed number of send and
	// receive tokens").
	SendTokens int

	// RecoveryHandlerBase is the fixed cost of the FAULT_DETECTED handler
	// (the dominant share of the ~900,000 µs per-process recovery time of
	// Table 3: re-registering memory and re-synchronizing with the LANai).
	RecoveryHandlerBase sim.Duration
	// RecoveryPerToken is the cost of re-pushing one shadow token.
	RecoveryPerToken sim.Duration
	// RecoverySeqUpload is the cost of uploading the per-stream ACK table.
	RecoverySeqUpload sim.Duration
	// RecoveryReopen is the cost of the final port reopen handshake.
	RecoveryReopen sim.Duration

	// PerConnectionSeqSync is an ablation switch (DESIGN.md §6): model the
	// design the paper rejected, where host-generated sequence numbers are
	// kept strictly per connection and "all the processes on a node
	// sending messages to the same remote node need to be synchronized"
	// (§4.1). Each send then pays SeqSyncOverhead of host CPU on top of
	// the normal FTGM housekeeping.
	PerConnectionSeqSync bool
	// SeqSyncOverhead is the extra host cost per send in that design.
	SeqSyncOverhead sim.Duration
}

// DefaultHostConfig returns the calibrated host constants.
func DefaultHostConfig() HostConfig {
	return HostConfig{
		SendOverhead:        300 * sim.Nanosecond,
		RecvOverhead:        750 * sim.Nanosecond,
		ProvideOverhead:     300 * sim.Nanosecond,
		FTGMSendExtra:       250 * sim.Nanosecond,
		FTGMRecvExtra:       400 * sim.Nanosecond,
		SendTokens:          64,
		RecoveryHandlerBase: 830 * sim.Millisecond,
		RecoveryPerToken:    100 * sim.Microsecond,
		RecoverySeqUpload:   20 * sim.Millisecond,
		RecoveryReopen:      50 * sim.Millisecond,
		SeqSyncOverhead:     350 * sim.Nanosecond,
	}
}

// Config assembles the configuration of every layer.
type Config struct {
	// Mode selects GM or FTGM for the whole cluster.
	Mode Mode
	// Seed drives the deterministic RNG.
	Seed uint64

	Host   HostConfig
	MCP    mcp.Config
	Lanai  lanai.Config
	PCI    host.PCIConfig
	Link   fabric.LinkConfig
	Switch fabric.SwitchConfig
	Driver core.DriverConfig
	FTD    core.FTDConfig
	Mapper mapper.Config

	// NetWatch configures the network watchdog daemon (path-failure
	// detection, autonomous remap, alternate-route failover). Disabled by
	// default: stock GM/FTGM has no network-fault recovery.
	NetWatch core.NetWatchConfig

	// ControlPlane selects the post-boot repair plane. The zero value keeps
	// the classic central watchdog (see NetWatch); ControlPlaneGossip runs
	// a membership agent on every node instead.
	ControlPlane ControlPlane
	// Gossip configures the distributed membership agents (only read when
	// ControlPlane is ControlPlaneGossip). Zero fields take the defaults.
	Gossip gossip.Config

	// MapperConvergeTimeout caps how much virtual time Boot, Remap and the
	// network watchdog give the mapping protocol to converge before
	// declaring failure. <= 0 means the 10 s default.
	MapperConvergeTimeout sim.Duration

	// MapperRetries is how many extra synchronous mapping attempts Boot and
	// Remap make when an attempt hits MapperConvergeTimeout, with a capped
	// backoff between attempts and a doubled convergence cap each retry
	// (a congested or flapping fabric often converges given more budget).
	// 0 means the default (3 retries); negative disables retrying.
	MapperRetries int

	// Shards enables within-trial parallelism: every node (host + NIC) and
	// every switch becomes its own event domain, synchronized conservatively
	// with the link propagation delay as lookahead, and up to Shards OS
	// threads execute independent domains concurrently. Results, traces and
	// event schedules are bit-for-bit identical for every value >= 1 (see
	// DESIGN.md §12); 0 keeps the classic single-engine cluster.
	Shards int

	// Speculate arms speculative run-ahead (DESIGN.md §13, §16) on a
	// sharded cluster: speculation-eligible event domains may execute up to
	// SpecHorizon past their conservative window bound, with the barrier
	// committing or rolling the span back. Every cluster domain is
	// eligible — the node domains (gm library + driver + FTD + LANai + MCP)
	// and the switch domains journal their state incrementally through the
	// undo-journal facility (DESIGN.md §16) — and co-simulated domains
	// (traffic generators, telemetry collectors) join by registering their
	// own hooks with sim.Engine.EnableSpeculation. Workloads driven on a
	// speculating node domain must journal their own mutable state the same
	// way. For a fixed Speculate setting, results stay bit-for-bit
	// identical across every Shards value AND identical to the conservative
	// run (the commit/rollback decisions are pure functions of the
	// deterministic window schedule, never of executor count). Ignored when
	// Shards == 0.
	Speculate bool
	// SpecHorizon is how far past the conservative bound a hook-registered
	// domain may speculate. <= 0 means 8x the link propagation delay.
	SpecHorizon sim.Duration
	// ParallelThreshold is how many domains must have due work in a window
	// before it is dispatched to the worker pool instead of swept inline
	// (sim.Engine.SetParallelThreshold). 0 keeps the engine default. A
	// pure performance knob; results are identical for every value.
	ParallelThreshold int
}

// DefaultConfig returns the full calibrated stack in the given mode.
func DefaultConfig(mode Mode) Config {
	return Config{
		Mode:   mode,
		Seed:   1,
		Host:   DefaultHostConfig(),
		MCP:    mcp.DefaultConfig(),
		Lanai:  lanai.DefaultConfig(),
		PCI:    host.DefaultPCIConfig(),
		Link:   fabric.DefaultLinkConfig(),
		Switch: fabric.DefaultSwitchConfig(),
		Driver: core.DefaultDriverConfig(),
		FTD:    core.DefaultFTDConfig(),
		Mapper: mapper.DefaultConfig(),

		NetWatch:              core.DefaultNetWatchConfig(),
		MapperConvergeTimeout: 10 * sim.Second,
	}
}
