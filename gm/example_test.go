package gm_test

import (
	"fmt"

	"repro/gm"
)

// The complete life of a message: build a cluster, boot it (MCP load + GM
// mapping), exchange a message, observe the callback.
func Example() {
	cluster := gm.NewCluster(gm.DefaultConfig(gm.ModeFTGM))
	alice := cluster.AddNode("alice")
	bob := cluster.AddNode("bob")
	sw := cluster.AddSwitch("sw0")
	if err := cluster.Connect(alice, sw, 0); err != nil {
		panic(err)
	}
	if err := cluster.Connect(bob, sw, 1); err != nil {
		panic(err)
	}
	if _, err := cluster.Boot(); err != nil {
		panic(err)
	}

	pa, _ := alice.OpenPort(2)
	pb, _ := bob.OpenPort(2)
	pb.SetReceiveHandler(func(ev gm.RecvEvent) {
		fmt.Printf("bob received %q\n", ev.Data)
	})
	_ = pb.ProvideReceiveBuffer(4096, gm.PriorityLow)
	_ = pa.Send(bob.ID(), 2, gm.PriorityLow, []byte("hello"), func(s gm.SendStatus) {
		fmt.Printf("send status: %v\n", s)
	})
	cluster.Run(5 * gm.Millisecond)
	// Output:
	// bob received "hello"
	// send status: ok
}

// Transparent fault recovery: the interface hangs mid-exchange and the
// application code — which contains no fault handling — still sees
// exactly-once delivery.
func ExampleNode_InjectHang() {
	cluster := gm.NewCluster(gm.DefaultConfig(gm.ModeFTGM))
	a := cluster.AddNode("a")
	b := cluster.AddNode("b")
	sw := cluster.AddSwitch("sw")
	_ = cluster.Connect(a, sw, 0)
	_ = cluster.Connect(b, sw, 1)
	if _, err := cluster.Boot(); err != nil {
		panic(err)
	}
	pa, _ := a.OpenPort(1)
	pb, _ := b.OpenPort(1)
	delivered := 0
	pb.SetReceiveHandler(func(ev gm.RecvEvent) { delivered++ })
	for i := 0; i < 4; i++ {
		_ = pb.ProvideReceiveBuffer(64, gm.PriorityLow)
	}

	a.InjectHang() // the network processor dies before anything is sent
	_ = pa.Send(b.ID(), 1, gm.PriorityLow, []byte("survives"), nil)
	cluster.Run(10 * gm.Second) // watchdog -> FTD -> transparent recovery

	fmt.Printf("delivered %d time(s)\n", delivered)
	// Output:
	// delivered 1 time(s)
}

// GM's polling style: drain the receive queue with Receive and hand
// unknown events to UnknownEvent, the gm_unknown() of the paper.
func ExamplePort_Receive() {
	cluster := gm.NewCluster(gm.DefaultConfig(gm.ModeFTGM))
	a := cluster.AddNode("a")
	b := cluster.AddNode("b")
	sw := cluster.AddSwitch("sw")
	_ = cluster.Connect(a, sw, 0)
	_ = cluster.Connect(b, sw, 1)
	if _, err := cluster.Boot(); err != nil {
		panic(err)
	}
	pa, _ := a.OpenPort(1)
	pb, _ := b.OpenPort(1)
	pb.EnablePolling()
	_ = pb.ProvideReceiveBuffer(64, gm.PriorityLow)
	_ = pa.Send(b.ID(), 1, gm.PriorityLow, []byte("polled"), nil)
	cluster.Run(5 * gm.Millisecond)

	for {
		ev, ok := pb.Receive()
		if !ok {
			break
		}
		switch ev.Type {
		case gm.EvReceived:
			fmt.Printf("event: %q\n", ev.Data)
		default:
			pb.UnknownEvent(ev)
		}
	}
	// Output:
	// event: "polled"
}
