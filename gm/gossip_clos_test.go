package gm

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"testing"

	"repro/internal/gossip"
)

// runGossipClosStormTrial is the large-cluster gossip storm: a 64-node
// two-tier Clos (2 spines, 8 leaves) under all-to-all traffic loses the
// mapping node and two more hosts on other leaves in a staggered burst —
// every loss a watchdog-invisible hard hang. The distributed plane must
// converge on expelling exactly the three dead members at every shard
// count, and the complete fingerprint — trace stream, per-node counters,
// gossip stats, final membership views — must be byte-identical.
func runGossipClosStormTrial(t *testing.T, shards int) string {
	t.Helper()
	cfg := fastGossipConfig(shards)
	c := NewCluster(cfg)
	topo, err := BuildClos(c, 2, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	// 64 nodes of boot flood plus probe rounds is megabytes of trace; hash
	// the stream instead of holding it (the hash is just as byte-exact).
	th := fnv.New64a()
	c.EnableTrace(th)
	if _, err := topo.Boot(c); err != nil {
		t.Fatal(err)
	}
	n := len(topo.Nodes)
	recv := make([]int, n)
	sent := make([]int, n)
	rejected := make([]int, n)
	ports := make([]*Port, n)
	for i, node := range topo.Nodes {
		p, err := node.OpenPort(2)
		if err != nil {
			t.Fatal(err)
		}
		ports[i] = p
		i := i
		p.SetReceiveHandler(func(ev RecvEvent) {
			recv[i]++
			_ = p.RecycleReceiveBuffer(ev.Data, ev.Prio)
		})
		for j := 0; j < 8; j++ {
			if err := p.ProvideReceiveBuffer(256, PriorityLow); err != nil {
				t.Fatal(err)
			}
		}
	}
	stopAt := c.Now() + 40*Millisecond
	payload := make([]byte, 128)
	for i, node := range topo.Nodes {
		i := i
		eng := node.Engine()
		peer := (i + 1) % n
		var tick func()
		tick = func() {
			if eng.Now() >= stopAt || !topo.Nodes[i].Running() {
				return
			}
			if peer == i {
				peer = (peer + 1) % n
			}
			if err := ports[i].Send(topo.Nodes[peer].ID(), 2, PriorityLow, payload, nil); err != nil {
				rejected[i]++
			} else {
				sent[i]++
			}
			peer = (peer + 1) % n
			eng.After(80*Microsecond, tick)
		}
		eng.After(Duration(i%16+1)*Microsecond, tick)
	}
	// The storm: the mapping node and two hosts on other leaves die in a
	// staggered burst, each a hard hang no FTD watchdog can see.
	victims := []int{0, 19, 42}
	for k, v := range victims {
		v := v
		c.After(Duration(8+3*k)*Millisecond, func() { topo.Nodes[v].InjectHardHang() })
	}
	c.RunUntil(stopAt + 100*Millisecond)
	c.Shutdown(Millisecond)

	deadSet := map[int]bool{}
	for _, v := range victims {
		deadSet[v] = true
	}
	for i := range topo.Nodes {
		if deadSet[i] {
			continue
		}
		view := c.GossipAgents()[i].Members()
		for _, v := range victims {
			if view[topo.Nodes[v].ID()] != gossip.StateDead {
				t.Fatalf("shards=%d: survivor %d never expelled dead node %d (%v)",
					shards, i, v, view[topo.Nodes[v].ID()])
			}
		}
		for j := range topo.Nodes {
			if j == i || deadSet[j] {
				continue
			}
			if view[topo.Nodes[j].ID()] == gossip.StateDead {
				t.Fatalf("shards=%d: survivor %d expelled live node %d", shards, i, j)
			}
		}
	}

	var sum bytes.Buffer
	fmt.Fprintf(&sum, "events=%d now=%d trace=%x\n", c.Engine().ExecutedAll(), c.Now(), th.Sum64())
	for i, node := range topo.Nodes {
		ag := c.GossipAgents()[i]
		fmt.Fprintf(&sum, "node%d sent=%d rejected=%d recv=%d mcp=%+v gossip{%s} view{%s}\n",
			i, sent[i], rejected[i], recv[i], node.MCPStats(), ag.Stats(), gossipViewLine(ag))
	}
	return sum.String()
}

// TestShardInvarianceGossipClosStorm scales the gossip determinism contract
// to a 64-node Clos under a three-death storm: the plane's verdicts, the
// survivors' route repairs and every counter are bit-for-bit identical
// across 1, 4 and 8 executors.
func TestShardInvarianceGossipClosStorm(t *testing.T) {
	serial := runGossipClosStormTrial(t, 1)
	if len(serial) == 0 {
		t.Fatal("empty fingerprint")
	}
	for _, shards := range []int{4, 8} {
		diffFingerprints(t, fmt.Sprintf("shards=%d", shards), serial, runGossipClosStormTrial(t, shards))
	}
}
