package gm

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"testing"

	"repro/internal/fabric"
)

// resumeTrial is one deterministic mid-campaign scenario built for the
// whole-sim snapshot/resume contract: a 4-node FTGM cluster with the
// speculation probe pair armed, a lossy cable keeping Go-Back-N busy, and a
// processor hang with full recovery landing inside the window. The same
// builder must produce bit-identical runs at any shard count — that is the
// determinism contract Resume's replay-and-attest rides on.
type resumeTrial struct {
	c         *Cluster
	th        interface{ Sum64() uint64 }
	pa, pb    *specProbe
	nodes     []*Node
	sent      []int
	rejected  []int
	recv      []int
	recovered int
	snapAt    Time
	endAt     Time
}

func buildResumeTrial(t *testing.T, shards int) *resumeTrial {
	t.Helper()
	cfg := fastRecoveryConfig(ModeFTGM, shards)
	cfg.Speculate = true
	cfg.SpecHorizon = 800 * Nanosecond // below the probe link latency
	c := NewCluster(cfg)
	const n = 4
	tr := &resumeTrial{c: c, nodes: make([]*Node, n),
		sent: make([]int, n), rejected: make([]int, n), recv: make([]int, n)}
	for i := range tr.nodes {
		tr.nodes[i] = c.AddNode(fmt.Sprintf("n%d", i))
	}
	sw := c.AddSwitch("sw")
	for i, nd := range tr.nodes {
		if err := c.Connect(nd, sw, i); err != nil {
			t.Fatal(err)
		}
	}
	// The probes outlive the snapshot instant: spans are still being opened
	// and resolved when the cursor is cut.
	tr.pa, tr.pb = attachSpecProbes(c, Time(5*Millisecond))
	th := fnv.New64a()
	tr.th = th
	c.EnableTrace(th)
	if _, err := c.Boot(); err != nil {
		t.Fatal(err)
	}
	ports := make([]*Port, n)
	for i, nd := range tr.nodes {
		p, err := nd.OpenPort(2)
		if err != nil {
			t.Fatal(err)
		}
		ports[i] = p
		i := i
		p.SetReceiveHandler(func(ev RecvEvent) {
			tr.recv[i]++
			_ = p.RecycleReceiveBuffer(ev.Data, ev.Prio)
		})
		for j := 0; j < 16; j++ {
			if err := p.ProvideReceiveBuffer(512, PriorityLow); err != nil {
				t.Fatal(err)
			}
		}
	}
	tr.nodes[1].Link().SetFaults(fabric.FaultProfile{DropProb: 0.05}, 7)
	tr.nodes[2].Recovered = func() { tr.recovered++ }

	stopAt := c.Now() + 2*Millisecond
	tr.snapAt = c.Now() + 700*Microsecond
	tr.endAt = stopAt + 16*Millisecond
	payload := make([]byte, 256)
	for i, nd := range tr.nodes {
		i := i
		eng := nd.Engine()
		peer := (i + 1) % n
		var tick func()
		tick = func() {
			if eng.Now() >= stopAt {
				return
			}
			if peer == i {
				peer = (peer + 1) % n
			}
			if err := ports[i].Send(tr.nodes[peer].ID(), 2, PriorityLow, payload, nil); err != nil {
				tr.rejected[i]++
			} else {
				tr.sent[i]++
			}
			peer = (peer + 1) % n
			eng.After(40*Microsecond, tick)
		}
		eng.After(Duration(i+1)*500*Nanosecond, tick)
	}
	c.After(300*Microsecond, func() { tr.nodes[2].InjectHang() })
	return tr
}

// finish runs the trial to completion and renders the byte-exact
// fingerprint: executed-event totals, the full trace hash, probe state and
// every per-node counter. Speculation counters are deliberately excluded —
// a paused-and-resumed run legitimately resolves spans at different
// barriers than an uninterrupted one while producing identical results.
func (tr *resumeTrial) finish() string {
	tr.c.RunUntil(tr.endAt)
	tr.c.Shutdown(Millisecond)
	var fp bytes.Buffer
	root := tr.c.Engine()
	fmt.Fprintf(&fp, "events=%d now=%d recovered=%d trace=%x\n",
		root.ExecutedAll(), tr.c.Now(), tr.recovered, tr.th.Sum64())
	fmt.Fprintf(&fp, "probeA c=%d h=%x exec=%d\nprobeB c=%d h=%x exec=%d\n",
		tr.pa.counter, tr.pa.hash, tr.pa.eng.Executed(),
		tr.pb.counter, tr.pb.hash, tr.pb.eng.Executed())
	for i, nd := range tr.nodes {
		fmt.Fprintf(&fp, "node%d sent=%d rejected=%d recv=%d mcp=%+v\n",
			i, tr.sent[i], tr.rejected[i], tr.recv[i], nd.MCPStats())
	}
	return fp.String()
}

// TestClusterSnapshotResumeBitForBit is the whole-sim acceptance contract:
// a cluster campaign snapshotted mid-run at one shard count and resumed on
// a freshly built cluster at another (speculation armed throughout,
// recovery in flight at the cut) finishes with a fingerprint byte-identical
// to the uninterrupted run — for every pairing of {1,4,8} snapshot shards
// with {1,4,8} resume shards.
func TestClusterSnapshotResumeBitForBit(t *testing.T) {
	ref := buildResumeTrial(t, 1)
	want := ref.finish()
	if ref.recovered == 0 {
		t.Fatal("reference run never completed the FTGM recovery")
	}
	commits, rollbacks, _, _ := ref.c.Engine().SpecStats()
	if commits == 0 || rollbacks == 0 {
		t.Fatalf("speculation not exercised on both outcomes (commits=%d rollbacks=%d)", commits, rollbacks)
	}

	for _, snapShards := range []int{1, 4, 8} {
		src := buildResumeTrial(t, snapShards)
		src.c.RunUntil(src.snapAt)
		var snap bytes.Buffer
		if err := src.c.Engine().Snapshot(&snap); err != nil {
			t.Fatalf("snapshot at shards=%d: %v", snapShards, err)
		}
		for _, resShards := range []int{1, 4, 8} {
			dst := buildResumeTrial(t, resShards)
			if err := dst.c.Engine().Resume(bytes.NewReader(snap.Bytes())); err != nil {
				t.Fatalf("resume shards=%d from snapshot shards=%d: %v", resShards, snapShards, err)
			}
			if dst.c.Now() != dst.snapAt {
				t.Fatalf("resume landed at %v, want %v", dst.c.Now(), dst.snapAt)
			}
			got := dst.finish()
			diffFingerprints(t, fmt.Sprintf("snap@%d->resume@%d", snapShards, resShards), want, got)
		}
	}
}
