package gm

import (
	"bytes"
	"fmt"
	"testing"
)

// twoNodes builds and boots a two-node cluster on one switch.
func twoNodes(t *testing.T, mode Mode) (*Cluster, *Node, *Node) {
	t.Helper()
	return twoNodesCfg(t, DefaultConfig(mode))
}

func twoNodesCfg(t *testing.T, cfg Config) (*Cluster, *Node, *Node) {
	t.Helper()
	cl := NewCluster(cfg)
	a := cl.AddNode("alice")
	b := cl.AddNode("bob")
	sw := cl.AddSwitch("sw0")
	if err := cl.Connect(a, sw, 0); err != nil {
		t.Fatal(err)
	}
	if err := cl.Connect(b, sw, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Boot(); err != nil {
		t.Fatal(err)
	}
	return cl, a, b
}

func TestBootAssignsIdentities(t *testing.T) {
	cl, a, b := twoNodes(t, ModeGM)
	if !cl.Booted() {
		t.Fatal("not booted")
	}
	if a.ID() == 0 || b.ID() == 0 || a.ID() == b.ID() {
		t.Fatalf("IDs: a=%d b=%d", a.ID(), b.ID())
	}
	res := cl.MapResult()
	if len(res.IDs) != 2 {
		t.Fatalf("map found %d interfaces", len(res.IDs))
	}
}

func TestEndToEndMessaging(t *testing.T) {
	for _, mode := range []Mode{ModeGM, ModeFTGM} {
		t.Run(mode.String(), func(t *testing.T) {
			cl, a, b := twoNodes(t, mode)
			pa, err := a.OpenPort(2)
			if err != nil {
				t.Fatal(err)
			}
			pb, err := b.OpenPort(2)
			if err != nil {
				t.Fatal(err)
			}
			var got []RecvEvent
			pb.SetReceiveHandler(func(ev RecvEvent) { got = append(got, ev) })
			if err := pb.ProvideReceiveBuffer(4096, PriorityLow); err != nil {
				t.Fatal(err)
			}
			sent := false
			payload := []byte("through the whole stack")
			if err := pa.Send(b.ID(), 2, PriorityLow, payload, func(s SendStatus) {
				sent = s == SendOK
			}); err != nil {
				t.Fatal(err)
			}
			cl.Run(5 * Millisecond)
			if !sent {
				t.Error("send callback did not fire with OK")
			}
			if len(got) != 1 || !bytes.Equal(got[0].Data, payload) {
				t.Fatalf("received %+v", got)
			}
			if got[0].Src != a.ID() || got[0].SrcPort != 2 {
				t.Errorf("event source = %d:%d", got[0].Src, got[0].SrcPort)
			}
		})
	}
}

func TestSendTokenFlowControl(t *testing.T) {
	cfg := DefaultConfig(ModeGM)
	cfg.Host.SendTokens = 2
	cl := NewCluster(cfg)
	a := cl.AddNode("a")
	b := cl.AddNode("b")
	sw := cl.AddSwitch("sw")
	if err := cl.Connect(a, sw, 0); err != nil {
		t.Fatal(err)
	}
	if err := cl.Connect(b, sw, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Boot(); err != nil {
		t.Fatal(err)
	}
	pa, _ := a.OpenPort(1)
	pb, _ := b.OpenPort(1)
	pb.SetReceiveHandler(func(ev RecvEvent) {})
	if err := pb.ProvideReceiveBuffer(64, PriorityLow); err != nil {
		t.Fatal(err)
	}
	if err := pb.ProvideReceiveBuffer(64, PriorityLow); err != nil {
		t.Fatal(err)
	}
	if err := pa.Send(b.ID(), 1, PriorityLow, []byte("1"), nil); err != nil {
		t.Fatal(err)
	}
	if err := pa.Send(b.ID(), 1, PriorityLow, []byte("2"), nil); err != nil {
		t.Fatal(err)
	}
	// Token pool exhausted: gm_send without a token is a client error.
	if err := pa.Send(b.ID(), 1, PriorityLow, []byte("3"), nil); err != ErrNoSendTokens {
		t.Fatalf("err = %v, want ErrNoSendTokens", err)
	}
	cl.Run(10 * Millisecond)
	// Tokens returned by callbacks; sending works again.
	if pa.SendTokensAvailable() != 2 {
		t.Errorf("tokens = %d, want 2", pa.SendTokensAvailable())
	}
	if err := pa.Send(b.ID(), 1, PriorityLow, []byte("4"), nil); err != nil {
		t.Errorf("send after token return: %v", err)
	}
}

func TestPortValidation(t *testing.T) {
	cl, a, b := twoNodes(t, ModeGM)
	if _, err := a.OpenPort(99); err == nil {
		t.Error("port 99 opened")
	}
	p, err := a.OpenPort(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.OpenPort(1); err == nil {
		t.Error("double open")
	}
	if err := p.Send(b.ID(), 1, Priority(9), []byte("x"), nil); err == nil {
		t.Error("bad priority accepted")
	}
	if err := p.ProvideReceiveBuffer(0, PriorityLow); err == nil {
		t.Error("zero-size buffer accepted")
	}
	a.ClosePort(1)
	if err := p.Send(b.ID(), 1, PriorityLow, []byte("x"), nil); err != ErrPortClosed {
		t.Errorf("send on closed port: %v", err)
	}
	_ = cl
}

func TestOpenPortBeforeBoot(t *testing.T) {
	cl := NewCluster(DefaultConfig(ModeGM))
	n := cl.AddNode("n")
	if _, err := n.OpenPort(1); err != ErrNotBooted {
		t.Errorf("err = %v, want ErrNotBooted", err)
	}
}

func TestTable2HostUtilization(t *testing.T) {
	// Table 2: host send util 0.30 (GM) vs 0.55 (FTGM) µs; recv 0.75 vs
	// 1.15 µs.
	measure := func(mode Mode) (send, recv float64) {
		cl, a, b := twoNodes(t, mode)
		pa, _ := a.OpenPort(1)
		pb, _ := b.OpenPort(1)
		pb.SetReceiveHandler(func(ev RecvEvent) {})
		const n = 50
		for i := 0; i < n; i++ {
			if err := pb.ProvideReceiveBuffer(64, PriorityLow); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < n; i++ {
			if err := pa.Send(b.ID(), 1, PriorityLow, []byte{byte(i)}, nil); err != nil {
				t.Fatal(err)
			}
		}
		cl.Run(100 * Millisecond)
		if s, _ := b.CPU().Counts(); s != 0 {
			t.Fatal("receiver charged for sends")
		}
		return a.CPU().PerSend().Micros(), b.CPU().PerRecv().Micros()
	}
	gmSend, gmRecv := measure(ModeGM)
	ftSend, ftRecv := measure(ModeFTGM)
	if gmSend < 0.25 || gmSend > 0.35 {
		t.Errorf("GM send util = %.2f, want ~0.30", gmSend)
	}
	if gmRecv < 0.70 || gmRecv > 0.80 {
		t.Errorf("GM recv util = %.2f, want ~0.75", gmRecv)
	}
	if ftSend < 0.50 || ftSend > 0.60 {
		t.Errorf("FTGM send util = %.2f, want ~0.55", ftSend)
	}
	if ftRecv < 1.10 || ftRecv > 1.20 {
		t.Errorf("FTGM recv util = %.2f, want ~1.15", ftRecv)
	}
}

func TestPingPongLatencyBands(t *testing.T) {
	// Figure 8 / Table 2: half round trip ~11.5 µs (GM) vs ~13.0 µs (FTGM)
	// for short messages.
	measure := func(mode Mode) float64 {
		cl, a, b := twoNodes(t, mode)
		pa, _ := a.OpenPort(1)
		pb, _ := b.OpenPort(1)
		const rounds = 50
		payload := make([]byte, 64)
		var start Time
		var rtts []Duration
		pb.SetReceiveHandler(func(ev RecvEvent) {
			if err := pb.ProvideReceiveBuffer(256, PriorityLow); err != nil {
				t.Fatal(err)
			}
			if err := pb.Send(a.ID(), 1, PriorityLow, payload, nil); err != nil {
				t.Fatal(err)
			}
		})
		done := 0
		pa.SetReceiveHandler(func(ev RecvEvent) {
			rtts = append(rtts, cl.Now()-start)
			done++
			if done < rounds {
				start = cl.Now()
				if err := pa.ProvideReceiveBuffer(256, PriorityLow); err != nil {
					t.Fatal(err)
				}
				if err := pa.Send(b.ID(), 1, PriorityLow, payload, nil); err != nil {
					t.Fatal(err)
				}
			}
		})
		if err := pa.ProvideReceiveBuffer(256, PriorityLow); err != nil {
			t.Fatal(err)
		}
		if err := pb.ProvideReceiveBuffer(256, PriorityLow); err != nil {
			t.Fatal(err)
		}
		start = cl.Now()
		if err := pa.Send(b.ID(), 1, PriorityLow, payload, nil); err != nil {
			t.Fatal(err)
		}
		cl.Run(100 * Millisecond)
		if done != rounds {
			t.Fatalf("%v: completed %d/%d rounds", mode, done, rounds)
		}
		var sum Duration
		for _, r := range rtts {
			sum += r
		}
		return (sum / Duration(len(rtts)) / 2).Micros()
	}
	gmLat := measure(ModeGM)
	ftLat := measure(ModeFTGM)
	if gmLat < 10.0 || gmLat > 13.0 {
		t.Errorf("GM half-RTT = %.2f us, want ~11.5", gmLat)
	}
	if ftLat < 11.5 || ftLat > 14.5 {
		t.Errorf("FTGM half-RTT = %.2f us, want ~13.0", ftLat)
	}
	delta := ftLat - gmLat
	if delta < 1.0 || delta > 2.0 {
		t.Errorf("FTGM latency overhead = %.2f us, want ~1.5", delta)
	}
}

// streamAudit drives continuous numbered traffic and audits exactly-once
// in-order delivery.
type streamAudit struct {
	t        *testing.T
	cl       *Cluster
	from, to *Port
	dest     NodeID

	sent      int
	delivered []uint64
	dups      int
	reorder   int
	seen      map[uint64]bool
}

func newStreamAudit(t *testing.T, cl *Cluster, from, to *Port, dest NodeID) *streamAudit {
	sa := &streamAudit{t: t, cl: cl, from: from, to: to, dest: dest, seen: make(map[uint64]bool)}
	to.SetReceiveHandler(func(ev RecvEvent) {
		if len(ev.Data) != 8 {
			t.Errorf("bad payload length %d", len(ev.Data))
			return
		}
		var id uint64
		for i := 0; i < 8; i++ {
			id |= uint64(ev.Data[i]) << (8 * i)
		}
		if sa.seen[id] {
			sa.dups++
		}
		if len(sa.delivered) > 0 && id <= sa.delivered[len(sa.delivered)-1] {
			sa.reorder++
		}
		sa.seen[id] = true
		sa.delivered = append(sa.delivered, id)
		_ = to.ProvideReceiveBuffer(64, PriorityLow)
	})
	return sa
}

func (sa *streamAudit) sendOne() {
	sa.sent++
	id := uint64(sa.sent)
	buf := make([]byte, 8)
	for i := 0; i < 8; i++ {
		buf[i] = byte(id >> (8 * i))
	}
	if err := sa.from.Send(sa.dest, sa.to.ID(), PriorityLow, buf, nil); err != nil && err != ErrNoSendTokens {
		sa.t.Errorf("send %d: %v", id, err)
	}
	if err, ok := interface{}(nil).(error); ok {
		_ = err
	}
}

func TestTransparentRecoveryExactlyOnce(t *testing.T) {
	// The headline result: continuous traffic, LANai hang mid-stream,
	// transparent FTGM recovery, and an exactly-once in-order audit. The
	// process needs a deep token pool: during the ~1.7 s outage no
	// callbacks fire, so tokens for the whole backlog stay outstanding.
	cfg := DefaultConfig(ModeFTGM)
	cfg.Host.SendTokens = 512
	cl, a, b := twoNodesCfg(t, cfg)
	pa, _ := a.OpenPort(1)
	pb, _ := b.OpenPort(1)
	for i := 0; i < 80; i++ {
		if err := pb.ProvideReceiveBuffer(64, PriorityLow); err != nil {
			t.Fatal(err)
		}
	}
	sa := newStreamAudit(t, cl, pa, pb, b.ID())

	// Send one message every 100 µs for 4 seconds of virtual time.
	const total = 200
	var pump func(i int)
	pump = func(i int) {
		if i >= total {
			return
		}
		sa.sendOne()
		cl.After(100*Microsecond, func() { pump(i + 1) })
	}
	pump(0)

	// Hang the sender's LANai in the middle of the stream.
	cl.After(5*Millisecond, func() { a.InjectHang() })

	cl.Run(8 * Second)
	if sa.sent != total {
		t.Fatalf("sent %d/%d", sa.sent, total)
	}
	if len(sa.delivered) != total {
		t.Fatalf("delivered %d/%d after recovery", len(sa.delivered), total)
	}
	if sa.dups != 0 {
		t.Errorf("%d duplicate deliveries", sa.dups)
	}
	if sa.reorder != 0 {
		t.Errorf("%d reordered deliveries", sa.reorder)
	}
	if pa.Stats().Recoveries != 1 {
		t.Errorf("port recoveries = %d, want 1", pa.Stats().Recoveries)
	}
	tl := a.FTD().Timeline()
	if tl.TotalTime() < 1*Second || tl.TotalTime() > 3*Second {
		t.Errorf("total recovery = %v, want ~1.7s (Table 3 sums to ~1.67s)", tl.TotalTime())
	}
}

func TestReceiverRecoveryExactlyOnce(t *testing.T) {
	// Hang the *receiver's* LANai instead: delayed ACKs + restored
	// per-stream ACK table must still give exactly-once delivery.
	cfg := DefaultConfig(ModeFTGM)
	cfg.Host.SendTokens = 512
	cl, a, b := twoNodesCfg(t, cfg)
	pa, _ := a.OpenPort(1)
	pb, _ := b.OpenPort(1)
	for i := 0; i < 250; i++ {
		if err := pb.ProvideReceiveBuffer(64, PriorityLow); err != nil {
			t.Fatal(err)
		}
	}
	sa := newStreamAudit(t, cl, pa, pb, b.ID())
	const total = 200
	var pump func(i int)
	pump = func(i int) {
		if i >= total {
			return
		}
		sa.sendOne()
		cl.After(100*Microsecond, func() { pump(i + 1) })
	}
	pump(0)
	cl.After(5*Millisecond, func() { b.InjectHang() })
	cl.Run(10 * Second)
	if len(sa.delivered) != total {
		t.Fatalf("delivered %d/%d after receiver recovery", len(sa.delivered), total)
	}
	if sa.dups != 0 {
		t.Errorf("%d duplicate deliveries", sa.dups)
	}
	if sa.reorder != 0 {
		t.Errorf("%d reordered deliveries", sa.reorder)
	}
}

func TestFigure4DuplicateOnNaiveRestart(t *testing.T) {
	// Stock GM + naive MCP reload: sender crashes with the ACK in flight;
	// after reload it resends with a fresh sequence number, the receiver
	// NACKs with its expectation, the reloaded sender adopts it, and the
	// receiver accepts a duplicate (§3.1.1, Figure 4).
	cl, a, b := twoNodes(t, ModeGM)
	pa, _ := a.OpenPort(1)
	pb, _ := b.OpenPort(1)
	for i := 0; i < 10; i++ {
		if err := pb.ProvideReceiveBuffer(64, PriorityLow); err != nil {
			t.Fatal(err)
		}
	}
	var delivered [][]byte
	pb.SetReceiveHandler(func(ev RecvEvent) {
		delivered = append(delivered, append([]byte(nil), ev.Data...))
	})
	// First message flows normally.
	if err := pa.Send(b.ID(), 1, PriorityLow, []byte("msg-one"), nil); err != nil {
		t.Fatal(err)
	}
	cl.Run(2 * Millisecond)
	// Second message: hang the sender the instant the receiver *emits*
	// the ACK — it is then "in transit" toward a dead interface, so the
	// sender's callback never fires and its library still holds the token.
	var probe func()
	probe = func() {
		if b.MCPStats().AcksSent >= 2 {
			if !a.Hung() {
				a.InjectHang()
			}
			return
		}
		cl.After(100*Nanosecond, probe)
	}
	cl.After(100*Nanosecond, probe)
	if err := pa.Send(b.ID(), 1, PriorityLow, []byte("msg-two"), nil); err != nil {
		t.Fatal(err)
	}
	cl.Run(5 * Millisecond)
	if len(delivered) != 2 {
		t.Fatalf("setup failed: delivered %d", len(delivered))
	}
	// Naive restart re-posts the pending send (its callback never fired).
	done := false
	a.NaiveRestart(func() { done = true })
	cl.Run(2 * Second)
	if !done {
		t.Fatal("naive restart did not finish")
	}
	dups := 0
	for _, d := range delivered {
		if bytes.Equal(d, []byte("msg-two")) {
			dups++
		}
	}
	if dups != 2 {
		t.Fatalf("msg-two delivered %d times, want 2 (the Figure 4 duplicate)", dups)
	}
}

func TestFigure4NoDuplicateWithFTGM(t *testing.T) {
	// Same crash window under FTGM: the restored send token carries its
	// original host-generated sequence number, so the receiver recognizes
	// the duplicate and only re-ACKs it.
	cl, a, b := twoNodes(t, ModeFTGM)
	pa, _ := a.OpenPort(1)
	pb, _ := b.OpenPort(1)
	for i := 0; i < 10; i++ {
		if err := pb.ProvideReceiveBuffer(64, PriorityLow); err != nil {
			t.Fatal(err)
		}
	}
	var delivered [][]byte
	pb.SetReceiveHandler(func(ev RecvEvent) {
		delivered = append(delivered, append([]byte(nil), ev.Data...))
	})
	if err := pa.Send(b.ID(), 1, PriorityLow, []byte("msg-one"), nil); err != nil {
		t.Fatal(err)
	}
	cl.Run(2 * Millisecond)
	// Same ACK-in-transit window as the naive-restart test.
	var probe func()
	probe = func() {
		if b.MCPStats().AcksSent >= 2 {
			if !a.Hung() {
				a.InjectHang()
			}
			return
		}
		cl.After(100*Nanosecond, probe)
	}
	cl.After(100*Nanosecond, probe)
	if err := pa.Send(b.ID(), 1, PriorityLow, []byte("msg-two"), nil); err != nil {
		t.Fatal(err)
	}
	// FTGM detects and recovers transparently; wait out the full recovery.
	cl.Run(8 * Second)
	count := 0
	for _, d := range delivered {
		if bytes.Equal(d, []byte("msg-two")) {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("msg-two delivered %d times, want exactly 1", count)
	}
	// The sender's callback fired (token returned) despite the crash.
	if pa.SendTokensAvailable() != DefaultHostConfig().SendTokens {
		t.Errorf("send tokens = %d, want all returned", pa.SendTokensAvailable())
	}
}

func TestFigure5LostMessageEarlyACK(t *testing.T) {
	// Stock GM: the receiver ACKs when the message reaches LANai SRAM; if
	// the interface dies before the DMA into the user buffer completes,
	// the message is gone forever — the sender saw the ACK and will never
	// resend (§3.1.2, Figure 5).
	cl, a, b := twoNodes(t, ModeGM)
	pa, _ := a.OpenPort(1)
	pb, _ := b.OpenPort(1)
	if err := pb.ProvideReceiveBuffer(64, PriorityLow); err != nil {
		t.Fatal(err)
	}
	var delivered int
	pb.SetReceiveHandler(func(ev RecvEvent) { delivered++ })
	sendOK := false
	if err := pa.Send(b.ID(), 1, PriorityLow, []byte("doomed"), func(s SendStatus) {
		sendOK = s == SendOK
	}); err != nil {
		t.Fatal(err)
	}
	// Kill the receiver's LANai in the ACK-sent/DMA-incomplete window.
	// The window opens when the ACK leaves (observable as AcksSent); with
	// default timing the ACK is sent at message arrival and the DMA+event
	// commit a few µs later.
	armed := true
	probe := func() {}
	probe = func() {
		if armed && b.MCPStats().AcksSent > 0 && delivered == 0 {
			armed = false
			b.Driver().MCP().InjectHang()
			return
		}
		if armed {
			cl.After(200*Nanosecond, probe)
		}
	}
	cl.After(200*Nanosecond, probe)
	cl.Run(5 * Millisecond)

	if !sendOK {
		t.Fatal("sender did not see the ACK — the window did not open")
	}
	if delivered != 0 {
		t.Skip("DMA beat the probe; window not hit in this configuration")
	}
	// Naive restart of the receiver: the message must be lost forever.
	done := false
	b.NaiveRestart(func() { done = true })
	cl.Run(3 * Second)
	if !done {
		t.Fatal("restart did not finish")
	}
	if delivered != 0 {
		t.Fatalf("message delivered %d times, want 0 (lost, Figure 5)", delivered)
	}
	if a.MCPStats().Retransmits != 0 {
		t.Errorf("sender retransmitted an ACKed message")
	}
}

func TestFigure5NoLossWithFTGM(t *testing.T) {
	// FTGM's delayed commit point: the ACK only leaves after the DMA and
	// event are in host memory, so a receiver hang in the same window
	// leads to a retransmission, not a loss.
	cl, a, b := twoNodes(t, ModeFTGM)
	pa, _ := a.OpenPort(1)
	pb, _ := b.OpenPort(1)
	for i := 0; i < 4; i++ {
		if err := pb.ProvideReceiveBuffer(64, PriorityLow); err != nil {
			t.Fatal(err)
		}
	}
	var delivered int
	pb.SetReceiveHandler(func(ev RecvEvent) { delivered++ })
	if err := pa.Send(b.ID(), 1, PriorityLow, []byte("survives"), nil); err != nil {
		t.Fatal(err)
	}
	// Hang the receiver before the DMA completes: 6 µs after the send is
	// roughly when the fragment lands in SRAM but before commit.
	cl.After(8*Microsecond, func() {
		if delivered == 0 {
			b.InjectHang()
		}
	})
	cl.Run(10 * Second)
	if delivered != 1 {
		t.Fatalf("delivered %d, want exactly 1 (retransmitted after recovery)", delivered)
	}
	if b.MCPStats().AcksSent == 0 {
		t.Error("no ACK after recovery")
	}
}

func TestMultiNodeAllPairs(t *testing.T) {
	cfg := DefaultConfig(ModeFTGM)
	cl := NewCluster(cfg)
	sw := cl.AddSwitch("sw")
	var nodes []*Node
	for i := 0; i < 4; i++ {
		n := cl.AddNode(fmt.Sprintf("n%d", i))
		if err := cl.Connect(n, sw, i); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	if _, err := cl.Boot(); err != nil {
		t.Fatal(err)
	}
	ports := make([]*Port, 4)
	recvd := make([]map[string]int, 4)
	for i, n := range nodes {
		i := i
		p, err := n.OpenPort(3)
		if err != nil {
			t.Fatal(err)
		}
		recvd[i] = make(map[string]int)
		p.SetReceiveHandler(func(ev RecvEvent) { recvd[i][string(ev.Data)]++ })
		for j := 0; j < 8; j++ {
			if err := p.ProvideReceiveBuffer(64, PriorityLow); err != nil {
				t.Fatal(err)
			}
		}
		ports[i] = p
	}
	for i := range nodes {
		for j := range nodes {
			if i == j {
				continue
			}
			msg := fmt.Sprintf("%d->%d", i, j)
			if err := ports[i].Send(nodes[j].ID(), 3, PriorityLow, []byte(msg), nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	cl.Run(50 * Millisecond)
	for i := range nodes {
		for j := range nodes {
			if i == j {
				continue
			}
			if recvd[j][fmt.Sprintf("%d->%d", i, j)] != 1 {
				t.Errorf("pair %d->%d: delivered %d times", i, j,
					recvd[j][fmt.Sprintf("%d->%d", i, j)])
			}
		}
	}
}

func TestAlarmDelivery(t *testing.T) {
	cl, a, _ := twoNodes(t, ModeFTGM)
	p, _ := a.OpenPort(1)
	fired := 0
	p.SetAlarmHandler(func() { fired++ })
	p.SetAlarm(cl.Now() + 5*Millisecond)
	cl.Run(3 * Millisecond)
	if fired != 0 {
		t.Fatal("alarm early")
	}
	cl.Run(5 * Millisecond)
	if fired != 1 {
		t.Fatalf("alarm fired %d times", fired)
	}
}

func TestRemapAfterLinkChange(t *testing.T) {
	cl, a, b := twoNodes(t, ModeGM)
	_ = a
	b.SetLinkUp(false)
	res, err := cl.Remap()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 1 {
		t.Fatalf("remap found %d interfaces, want 1", len(res.IDs))
	}
	b.SetLinkUp(true)
	res, err = cl.Remap()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 2 {
		t.Fatalf("remap after restore found %d, want 2", len(res.IDs))
	}
}

func TestHighPriorityOvertakesQueued(t *testing.T) {
	// GM's two non-preemptive priority levels: a high-priority message
	// posted behind a queue of low-priority ones is serviced first (it
	// never preempts an in-flight transfer, but it overtakes waiting ones)
	// and the two levels keep independent sequence spaces.
	cl, a, b := twoNodes(t, ModeFTGM)
	pa, _ := a.OpenPort(1)
	pb, _ := b.OpenPort(1)
	var order []Priority
	pb.SetReceiveHandler(func(ev RecvEvent) { order = append(order, ev.Prio) })
	for i := 0; i < 4; i++ {
		if err := pb.ProvideReceiveBuffer(70000, PriorityLow); err != nil {
			t.Fatal(err)
		}
	}
	ht := uint32(70000)
	if err := pb.ProvideReceiveBuffer(ht, PriorityHigh); err != nil {
		t.Fatal(err)
	}
	// Three big low-priority messages then one high-priority one, all
	// posted in the same instant: the high one must not wait behind the
	// low queue.
	for i := 0; i < 3; i++ {
		if err := pa.Send(b.ID(), 1, PriorityLow, make([]byte, 65536), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := pa.Send(b.ID(), 1, PriorityHigh, make([]byte, 1024), nil); err != nil {
		t.Fatal(err)
	}
	cl.Run(50 * Millisecond)
	if len(order) != 4 {
		t.Fatalf("delivered %d/4", len(order))
	}
	if order[0] != PriorityHigh {
		t.Errorf("delivery order = %v; high priority did not overtake", order)
	}
	// Both levels delivered exactly once each message despite separate
	// sequence spaces.
	lows := 0
	for _, p := range order {
		if p == PriorityLow {
			lows++
		}
	}
	if lows != 3 {
		t.Errorf("low-priority deliveries = %d", lows)
	}
}

func TestPriorityStreamsIndependentRecovery(t *testing.T) {
	// Both priority streams survive a hang with their own sequence spaces.
	cfg := DefaultConfig(ModeFTGM)
	cfg.Host.SendTokens = 256
	cl, a, b := twoNodesCfg(t, cfg)
	pa, _ := a.OpenPort(1)
	pb, _ := b.OpenPort(1)
	var low, high int
	pb.SetReceiveHandler(func(ev RecvEvent) {
		if ev.Prio == PriorityHigh {
			high++
		} else {
			low++
		}
		_ = pb.ProvideReceiveBuffer(64, ev.Prio)
	})
	for i := 0; i < 32; i++ {
		if err := pb.ProvideReceiveBuffer(64, PriorityLow); err != nil {
			t.Fatal(err)
		}
		if err := pb.ProvideReceiveBuffer(64, PriorityHigh); err != nil {
			t.Fatal(err)
		}
	}
	const per = 30
	sent := 0
	var pump func()
	pump = func() {
		if sent >= per {
			return
		}
		sent++
		if err := pa.Send(b.ID(), 1, PriorityLow, []byte{byte(sent)}, nil); err != nil {
			t.Fatal(err)
		}
		if err := pa.Send(b.ID(), 1, PriorityHigh, []byte{byte(sent)}, nil); err != nil {
			t.Fatal(err)
		}
		cl.After(300*Microsecond, pump)
	}
	pump()
	cl.After(3*Millisecond, func() { a.InjectHang() })
	cl.Run(12 * Second)
	if low != per || high != per {
		t.Fatalf("delivered low=%d high=%d, want %d each", low, high, per)
	}
}
