package gm

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/ckpt"
)

// periodicChain collects emitted frames the way a stable-storage sink
// would: copying, since frame bytes alias the node's pooled encode buffer.
type periodicChain struct {
	base   []byte
	deltas [][]byte
}

func (c *periodicChain) sink(t *testing.T) PeriodicSink {
	return func(f PeriodicFrame) {
		cp := append([]byte(nil), f.Bytes...)
		switch f.Kind {
		case FrameBase:
			if c.base != nil {
				t.Errorf("second base frame at seq %d", f.Seq)
			}
			c.base = cp
		case FrameDelta:
			if want := uint64(len(c.deltas) + 1); f.Seq != want {
				t.Errorf("delta seq %d, want %d (frames must arrive in chain order)", f.Seq, want)
			}
			c.deltas = append(c.deltas, cp)
		}
	}
}

// forceTip drains the node and forces a final frame so the chain tip equals
// the node's live state, then returns a fresh full checkpoint cut at the
// same instant for comparison.
func forceTip(t *testing.T, cl *Cluster, n *Node, chain *periodicChain) *ckpt.Checkpoint {
	t.Helper()
	drainNode(t, cl, n)
	before := len(chain.deltas)
	if _, emitted, err := n.ForceCheckpointFrame(); err != nil {
		t.Fatalf("ForceCheckpointFrame: %v", err)
	} else if emitted && len(chain.deltas) != before+1 {
		t.Fatalf("forced frame not delivered to sink (deltas %d -> %d)", before, len(chain.deltas))
	}
	fresh, err := n.Checkpoint()
	if err != nil {
		t.Fatalf("fresh checkpoint at forced tip: %v", err)
	}
	return fresh
}

// TestPeriodicCheckpointGuards covers the control-surface error paths.
func TestPeriodicCheckpointGuards(t *testing.T) {
	cl, _, b := twoNodesCfg(t, hostFaultConfig())
	if got := b.PeriodicCheckpointStats(); got != (PeriodicStats{}) {
		t.Fatalf("stats before start: %+v", got)
	}
	if _, _, err := b.ForceCheckpointFrame(); !errors.Is(err, ErrBadArgument) {
		t.Fatalf("force before start: %v, want ErrBadArgument", err)
	}
	sink := func(PeriodicFrame) {}
	if err := b.StartPeriodicCheckpoint(0, Millisecond, sink); !errors.Is(err, ErrBadArgument) {
		t.Fatalf("zero interval: %v, want ErrBadArgument", err)
	}
	if err := b.StartPeriodicCheckpoint(Millisecond, 0, sink); !errors.Is(err, ErrBadArgument) {
		t.Fatalf("zero budget: %v, want ErrBadArgument", err)
	}
	if err := b.StartPeriodicCheckpoint(Millisecond, Millisecond, nil); !errors.Is(err, ErrBadArgument) {
		t.Fatalf("nil sink: %v, want ErrBadArgument", err)
	}
	if err := b.StartPeriodicCheckpoint(Millisecond, 200*Microsecond, sink); err != nil {
		t.Fatal(err)
	}
	if err := b.StartPeriodicCheckpoint(Millisecond, 200*Microsecond, sink); !errors.Is(err, ErrBadArgument) {
		t.Fatalf("double start: %v, want ErrBadArgument", err)
	}
	b.StopPeriodicCheckpoint()
	b.StopPeriodicCheckpoint() // idempotent
	cl.Run(10 * Millisecond)
	if got := b.PeriodicCheckpointStats().Frames; got > 1 {
		t.Fatalf("stopped checkpointer kept emitting: %d frames", got)
	}
	b.Kill()
	if err := b.StartPeriodicCheckpoint(Millisecond, Millisecond, sink); !errors.Is(err, ErrNodeDead) {
		t.Fatalf("start on dead node: %v, want ErrNodeDead", err)
	}
}

// TestPeriodicCheckpointChainReplay drives bidirectional traffic — ordinary
// sends, directed deposits, a port closed and reopened mid-run — under a
// running periodic checkpointer, then verifies the central §17 property:
// replaying base+deltas through ckpt.ReplayChain re-encodes bit-identical
// to a fresh Node.Checkpoint cut at the chain tip. Also asserts the drain
// pause stayed inside the budget.
func TestPeriodicCheckpointChainReplay(t *testing.T) {
	const total = 80
	const budget = 200 * Microsecond

	cl, a, b := twoNodesCfg(t, hostFaultConfig())
	pa, err := a.OpenPort(2)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.OpenPort(2)
	if err != nil {
		t.Fatal(err)
	}
	var atB, atA []int
	idxRecorder(pb, &atB)
	idxRecorder(pa, &atA)
	for i := 0; i < 64; i++ {
		if err := pa.ProvideReceiveBuffer(64, PriorityLow); err != nil {
			t.Fatal(err)
		}
		if err := pb.ProvideReceiveBuffer(64, PriorityLow); err != nil {
			t.Fatal(err)
		}
	}
	region, err := pb.RegisterMemory(256)
	if err != nil {
		t.Fatal(err)
	}

	var chain periodicChain
	if err := b.StartPeriodicCheckpoint(500*Microsecond, budget, chain.sink(t)); err != nil {
		t.Fatal(err)
	}

	// A secondary port that lives and dies mid-run: its closure must enter
	// the chain as a Removed record, its rebirth as a fresh port record.
	pb3, err := b.OpenPort(3)
	if err != nil {
		t.Fatal(err)
	}
	var at3 []int
	idxRecorder(pb3, &at3)
	for i := 0; i < 8; i++ {
		if err := pb3.ProvideReceiveBuffer(64, PriorityLow); err != nil {
			t.Fatal(err)
		}
	}

	for i := 0; i < total; i++ {
		if err := pa.Send(b.ID(), 2, PriorityLow, idxPayload(i), nil); err != nil {
			t.Fatalf("a send %d: %v", i, err)
		}
		if err := pb.Send(a.ID(), 2, PriorityLow, idxPayload(i), nil); err != nil {
			t.Fatalf("b send %d: %v", i, err)
		}
		if i%4 == 0 {
			if err := pa.DirectedSend(b.ID(), 2, region.ID, uint32(i%32)*8, idxPayload(i), nil); err != nil {
				t.Fatalf("directed send %d: %v", i, err)
			}
		}
		switch i {
		case 10:
			if err := pa.Send(b.ID(), 3, PriorityLow, idxPayload(i), nil); err != nil {
				t.Fatal(err)
			}
		case 30:
			drainNode(t, cl, b)
			b.ClosePort(3)
		case 50:
			pb3, err = b.OpenPort(3)
			if err != nil {
				t.Fatal(err)
			}
			idxRecorder(pb3, &at3)
			for j := 0; j < 8; j++ {
				if err := pb3.ProvideReceiveBuffer(64, PriorityLow); err != nil {
					t.Fatal(err)
				}
			}
		}
		cl.Run(100 * Microsecond)
	}
	cl.Run(5 * Millisecond)

	fresh := forceTip(t, cl, b, &chain)
	if chain.base == nil {
		t.Fatal("no base frame emitted")
	}
	if len(chain.deltas) == 0 {
		t.Fatal("no delta frames emitted under live traffic")
	}
	replayed, err := ckpt.ReplayChain(chain.base, chain.deltas)
	if err != nil {
		t.Fatalf("ReplayChain over %d deltas: %v", len(chain.deltas), err)
	}
	freshBytes := fresh.Encode()
	replayBytes := replayed.Encode()
	if !bytes.Equal(freshBytes, replayBytes) {
		t.Fatalf("chain replay diverges from fresh checkpoint: %d vs %d bytes (deltas=%d)",
			len(replayBytes), len(freshBytes), len(chain.deltas))
	}

	st := b.PeriodicCheckpointStats()
	if st.Frames != uint64(1+len(chain.deltas)) {
		t.Fatalf("stats.Frames = %d, sink saw %d frames", st.Frames, 1+len(chain.deltas))
	}
	if st.MaxPause > budget {
		t.Fatalf("max drain pause %v exceeds budget %v", st.MaxPause, budget)
	}
	if st.Bytes == 0 || st.Frames < 3 {
		t.Fatalf("implausible periodic stats: %+v", st)
	}
	wantExactlyOnceInOrder(t, "a->b", atB, total)
	wantExactlyOnceInOrder(t, "b->a", atA, total)
}

// TestPeriodicCheckpointRestoreFromChain kills the host mid-traffic and
// revives it from the replayed base+delta chain instead of a one-shot
// checkpoint, auditing exactly-once in-order delivery in both directions —
// the incremental pipeline must be as good a recovery anchor as the full
// snapshot it replaces.
func TestPeriodicCheckpointRestoreFromChain(t *testing.T) {
	const total = 60
	const killAt = 30

	cl, a, b := twoNodesCfg(t, hostFaultConfig())
	pa, err := a.OpenPort(2)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.OpenPort(2)
	if err != nil {
		t.Fatal(err)
	}
	var atB, atA []int
	idxRecorder(pb, &atB)
	idxRecorder(pa, &atA)
	for i := 0; i < 64; i++ {
		if err := pa.ProvideReceiveBuffer(64, PriorityLow); err != nil {
			t.Fatal(err)
		}
		if err := pb.ProvideReceiveBuffer(64, PriorityLow); err != nil {
			t.Fatal(err)
		}
	}
	var chain periodicChain
	if err := b.StartPeriodicCheckpoint(500*Microsecond, 200*Microsecond, chain.sink(t)); err != nil {
		t.Fatal(err)
	}

	sentA, sentB := 0, 0
	bUp := true
	step := func() {
		if sentA < total {
			if err := pa.Send(b.ID(), 2, PriorityLow, idxPayload(sentA), nil); err != nil {
				t.Fatalf("a send %d: %v", sentA, err)
			}
			sentA++
		}
		if sentB < total && bUp {
			if err := pb.Send(a.ID(), 2, PriorityLow, idxPayload(sentB), nil); err != nil {
				t.Fatalf("b send %d: %v", sentB, err)
			}
			sentB++
		}
		cl.Run(100 * Microsecond)
	}
	for sentA < killAt {
		step()
	}

	forceTip(t, cl, b, &chain)
	replayed, err := ckpt.ReplayChain(chain.base, chain.deltas)
	if err != nil {
		t.Fatalf("ReplayChain: %v", err)
	}
	// Wire round-trip, exactly as a standby host would receive the replayed
	// anchor.
	anchor := wireCheckpoint(t, replayed)
	b.Kill()
	bUp = false
	for i := 0; i < 10; i++ {
		step()
	}

	restored := false
	err = b.Restore(anchor, func(ports map[PortID]*Port) {
		np, ok := ports[2]
		if !ok {
			t.Error("restore did not rebuild port 2")
			return
		}
		pb = np
		idxRecorder(pb, &atB)
	}, func() { restored, bUp = true, true })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000 && !restored; i++ {
		step()
	}
	if !restored {
		t.Fatal("restore never completed")
	}
	for sentA < total || sentB < total {
		step()
	}
	cl.Run(200 * Millisecond)

	wantExactlyOnceInOrder(t, "a->b", atB, total)
	wantExactlyOnceInOrder(t, "b->a", atA, total)
}

// TestPeriodicDeltaBuildZeroAlloc pins the tentpole's steady-state cost:
// with live protocol state (outstanding tokens, sequence streams, regions,
// a route table forced into the frame) a delta build + encode into the
// pooled arena performs zero allocations per frame after warm-up.
func TestPeriodicDeltaBuildZeroAlloc(t *testing.T) {
	cl, a, b := twoNodesCfg(t, hostFaultConfig())
	pa, err := a.OpenPort(2)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.OpenPort(2)
	if err != nil {
		t.Fatal(err)
	}
	var atB []int
	idxRecorder(pb, &atB)
	for i := 0; i < 64; i++ {
		if err := pb.ProvideReceiveBuffer(64, PriorityLow); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pb.RegisterMemory(512); err != nil {
		t.Fatal(err)
	}
	if err := b.StartPeriodicCheckpoint(Millisecond, 200*Microsecond, func(PeriodicFrame) {}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := pa.Send(b.ID(), 2, PriorityLow, idxPayload(i), nil); err != nil {
			t.Fatal(err)
		}
		if err := pb.Send(a.ID(), 2, PriorityLow, idxPayload(i), nil); err != nil {
			t.Fatal(err)
		}
		cl.Run(100 * Microsecond)
	}
	drainNode(t, cl, b)

	pc := b.pc
	if pc == nil || !pc.s.baseDone {
		t.Fatal("periodic checkpointer not established")
	}
	// Stamp everything dirty and force the route section in, so every build
	// walks the full port/region/route path. The sim clock is stopped, so
	// the stamps stay dirty across runs (no emission advances the epoch).
	for _, p := range b.ports {
		p.ckptMark = b.ckptEpoch
		for i := range p.regionMarks {
			p.regionMarks[i] = b.ckptEpoch
		}
	}
	pc.s.routesVer ^= 1

	build := func() {
		pc.buildDelta()
		pc.dbuf[0] = pc.delta.AppendTo(pc.dbuf[0][:0])
	}
	build() // size the arenas
	build()
	if allocs := testing.AllocsPerRun(200, build); allocs != 0 {
		t.Fatalf("steady-state delta build+encode allocates %.1f per frame, want 0", allocs)
	}
	if len(pc.dbuf[0]) == 0 || len(pc.delta.Ports) == 0 {
		t.Fatal("measured build produced an empty frame; the zero-alloc claim is vacuous")
	}
}
