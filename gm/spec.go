package gm

import (
	"repro/internal/core"
	"repro/internal/gmproto"
	"repro/internal/sim"
)

// Speculation journaling (sim spec.go). The gm library is node-domain event
// code — sends, receive dispatch, recovery handlers and host-fault revival
// all run as simulation callbacks on the owning node's engine — so once the
// node domain speculates, every library mutation must be restorable.
//
// The library keeps two first-touch shadows: portShadow for the per-port
// state a message touches (token cursor, callback table, poll queue, stats)
// and nodeShadow for the colder node-level state (port table, unreachable
// set, recovery bookkeeping, the rxAcks table pointer a host death swaps
// out). The heavy per-message structures — the §4.1 shadow store and the
// receive ACK table — journal themselves with per-operation undo logs
// (core/spec.go) and only need Bind calls here; the deferred dispatchers
// journal themselves inside sim.Deferred. Both shadows reuse their map and
// slice capacity across spans, so a warm touch allocates nothing.
//
// Discipline: SpecTouch at the top of every mutating method, before the
// first mutation — and again at the top of every closure that runs in a
// LATER span (recovery completions, revive stages), because the save taken
// when the closure was scheduled does not cover the span it fires in.
//
// Application state is out of scope: receive handlers and send-completion
// callbacks run inside the span, and a workload driven on a speculating node
// domain must journal its own mutable state (see the co-simulated monitor
// domains in internal/experiments/scale.go for the idiom).

// specSaveNil / specRestoreNil are the sim.Engine.EnableSpeculation hooks of
// a fully journaled domain: every component checkpoints itself incrementally
// through SpecTouch/SpecUndo, so the domain-level eager checkpoint carries
// nothing.
func specSaveNil() any   { return nil }
func specRestoreNil(any) {}

// portShadow is the restore image of a Port's library-level state.
type portShadow struct {
	open       bool
	sendTokens int
	nextToken  uint64
	polling    bool
	recovering bool
	nextRegion uint32
	// regionsLen suffices for the regions slice: between spans it only ever
	// appends (RegisterMemory, revival), so restore is a truncation.
	regionsLen int
	stats      PortStats
	// Periodic-checkpoint dirty bits. regionMarks is value-copied: entries
	// are overwritten in place (markRegion), not only appended.
	ckptMark    uint64
	regionMarks []uint64

	callbacks map[uint64]SendCallback
	// pollQ copies the queue's live region; restore rebuilds it canonically.
	// (Receive advances the head by reslicing, so positions inside the
	// backing array are unobservable.)
	pollQ []gmproto.Event
}

func (p *Port) specTouch() { p.node.eng.SpecTouch(&p.specMark, p) }

// SpecSave / SpecRestore implement sim.SpecSaver.
func (p *Port) SpecSave() {
	sh := &p.specShadow
	sh.open = p.open
	sh.sendTokens = p.sendTokens
	sh.nextToken = p.nextToken
	sh.polling = p.polling
	sh.recovering = p.recovering
	sh.nextRegion = p.nextRegion
	sh.regionsLen = len(p.regions)
	sh.stats = p.stats
	sh.ckptMark = p.ckptMark
	sh.regionMarks = append(sh.regionMarks[:0], p.regionMarks...)
	if sh.callbacks == nil {
		sh.callbacks = make(map[uint64]SendCallback, len(p.callbacks))
	} else {
		clear(sh.callbacks)
	}
	for id, cb := range p.callbacks {
		sh.callbacks[id] = cb
	}
	sh.pollQ = append(sh.pollQ[:0], p.pollQueue...)
}

func (p *Port) SpecRestore() {
	sh := &p.specShadow
	p.open = sh.open
	p.sendTokens = sh.sendTokens
	p.nextToken = sh.nextToken
	p.polling = sh.polling
	p.recovering = sh.recovering
	p.nextRegion = sh.nextRegion
	p.stats = sh.stats
	p.ckptMark = sh.ckptMark
	p.regionMarks = append(p.regionMarks[:0], sh.regionMarks...)
	// A Kill inside the span nils the callback table; the pre-span table was
	// always non-nil (buildPort), so rebuild it on that path.
	if p.callbacks == nil {
		p.callbacks = make(map[uint64]SendCallback, len(sh.callbacks))
	} else {
		clear(p.callbacks)
	}
	for id, cb := range sh.callbacks {
		p.callbacks[id] = cb
	}
	p.pollQueue = append(p.pollQueue[:0], sh.pollQ...)
	if len(p.regions) > sh.regionsLen {
		for i := sh.regionsLen; i < len(p.regions); i++ {
			p.regions[i] = nil
		}
		p.regions = p.regions[:sh.regionsLen]
	}
}

// nodeShadow is the restore image of the Node's library-level state. The
// ports live in a fixed array (PortID < MaxPorts), so saving them copies at
// most eight pointers.
type nodeShadow struct {
	rxAcks            *core.RxAckTable
	dead              bool
	reviveGen         uint64
	pendingRecoveries int
	recoveryBusyUntil sim.Time

	ports       [MaxPorts]*Port
	unreachable map[NodeID]bool

	// Periodic checkpointer: the instance pointer plus a value copy of its
	// journaled state block. The encode arenas are deliberately outside the
	// copy — a rolled-back span re-executes deterministically and rebuilds
	// them with identical bytes.
	pc        *periodicCkpt
	pcs       periodicState
	ckptEpoch uint64
}

func (n *Node) specTouch() { n.eng.SpecTouch(&n.specMark, n) }

// SpecSave / SpecRestore implement sim.SpecSaver.
func (n *Node) SpecSave() {
	sh := &n.specShadow
	sh.rxAcks = n.rxAcks
	sh.dead = n.dead
	sh.reviveGen = n.reviveGen
	sh.pendingRecoveries = n.pendingRecoveries
	sh.recoveryBusyUntil = n.recoveryBusyUntil
	sh.ports = [MaxPorts]*Port{}
	for id, p := range n.ports {
		sh.ports[id] = p
	}
	if sh.unreachable == nil {
		sh.unreachable = make(map[NodeID]bool, len(n.unreachable))
	} else {
		clear(sh.unreachable)
	}
	for id, v := range n.unreachable {
		sh.unreachable[id] = v
	}
	sh.pc = n.pc
	if n.pc != nil {
		sh.pcs = n.pc.s
	}
	sh.ckptEpoch = n.ckptEpoch
}

func (n *Node) SpecRestore() {
	sh := &n.specShadow
	n.rxAcks = sh.rxAcks
	n.dead = sh.dead
	n.reviveGen = sh.reviveGen
	n.pendingRecoveries = sh.pendingRecoveries
	n.recoveryBusyUntil = sh.recoveryBusyUntil
	// Kill replaces the port map wholesale; map identity is unobservable, so
	// restoring the contents into whichever map the node holds is exact.
	clear(n.ports)
	for id, p := range sh.ports {
		if p != nil {
			n.ports[PortID(id)] = p
		}
	}
	clear(n.unreachable)
	for id, v := range sh.unreachable {
		n.unreachable[id] = v
	}
	n.pc = sh.pc
	if n.pc != nil {
		n.pc.s = sh.pcs
	}
	n.ckptEpoch = sh.ckptEpoch
}
