package gm

import (
	"encoding/binary"
	"fmt"
	"testing"
)

// TestFigure6HeadOfLineBlocking demonstrates the structural change of
// Figure 6: stock GM multiplexes all ports' traffic to one remote node into
// a single connection with one sequence space, so a message one port cannot
// deliver (its destination port has no buffer) blocks every other port's
// traffic to that node. FTGM's independent per-(port,dest) streams remove
// the coupling.
func TestFigure6HeadOfLineBlocking(t *testing.T) {
	check := func(mode Mode) (port2Delivered bool) {
		cl, a, b := twoNodes(t, mode)
		pa1, err := a.OpenPort(1)
		if err != nil {
			t.Fatal(err)
		}
		pa2, err := a.OpenPort(2)
		if err != nil {
			t.Fatal(err)
		}
		pb1, err := b.OpenPort(1)
		if err != nil {
			t.Fatal(err)
		}
		pb2, err := b.OpenPort(2)
		if err != nil {
			t.Fatal(err)
		}
		got2 := false
		pb1.SetReceiveHandler(func(ev RecvEvent) {})
		pb2.SetReceiveHandler(func(ev RecvEvent) { got2 = true })
		// Only port 2 on B has a buffer; port 1's message cannot land.
		if err := pb2.ProvideReceiveBuffer(64, PriorityLow); err != nil {
			t.Fatal(err)
		}
		// Port 1 first (it will starve), then port 2.
		if err := pa1.Send(b.ID(), 1, PriorityLow, []byte("starved"), nil); err != nil {
			t.Fatal(err)
		}
		if err := pa2.Send(b.ID(), 2, PriorityLow, []byte("flows"), nil); err != nil {
			t.Fatal(err)
		}
		cl.Run(5 * Millisecond)
		return got2
	}
	if check(ModeGM) {
		t.Error("stock GM: port 2 delivered despite port 1 blocking the shared connection")
	}
	if !check(ModeFTGM) {
		t.Error("FTGM: independent per-port streams still head-of-line blocked")
	}
}

func TestMultiPortRecoverySamePair(t *testing.T) {
	// Two ports open on the failing node: the FTD posts FAULT_DETECTED to
	// both, both handlers run, and both ports' traffic survives.
	cfg := DefaultConfig(ModeFTGM)
	cfg.Host.SendTokens = 256
	cl, a, b := twoNodesCfg(t, cfg)
	var pas, pbs []*Port
	for _, id := range []PortID{1, 5} {
		pa, err := a.OpenPort(id)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := b.OpenPort(id)
		if err != nil {
			t.Fatal(err)
		}
		pas = append(pas, pa)
		pbs = append(pbs, pb)
	}
	recv := make([]int, 2)
	for i := range pbs {
		i := i
		pbs[i].SetReceiveHandler(func(ev RecvEvent) {
			recv[i]++
			_ = pbs[i].ProvideReceiveBuffer(64, PriorityLow)
		})
		for j := 0; j < 64; j++ {
			if err := pbs[i].ProvideReceiveBuffer(64, PriorityLow); err != nil {
				t.Fatal(err)
			}
		}
	}
	const perPort = 60
	var pump func(n int)
	pump = func(n int) {
		if n >= perPort {
			return
		}
		for i := range pas {
			if err := pas[i].Send(b.ID(), pas[i].ID(), PriorityLow, []byte{byte(n)}, nil); err != nil {
				t.Fatalf("send: %v", err)
			}
		}
		cl.After(200*Microsecond, func() { pump(n + 1) })
	}
	pump(0)
	cl.After(4*Millisecond, func() { a.InjectHang() })
	cl.Run(10 * Second)
	for i := range recv {
		if recv[i] != perPort {
			t.Errorf("port %d delivered %d/%d", pas[i].ID(), recv[i], perPort)
		}
	}
	if pas[0].Stats().Recoveries != 1 || pas[1].Stats().Recoveries != 1 {
		t.Errorf("recoveries = %d, %d; want 1 each",
			pas[0].Stats().Recoveries, pas[1].Stats().Recoveries)
	}
}

func TestRepeatedFaultsTorture(t *testing.T) {
	// Multiple hangs over a long run, alternating victims, with continuous
	// audited traffic in both directions: FTGM must deliver everything
	// exactly once, in order, through every recovery.
	if testing.Short() {
		t.Skip("long torture run")
	}
	cfg := DefaultConfig(ModeFTGM)
	cfg.Host.SendTokens = 4096
	cl, a, b := twoNodesCfg(t, cfg)
	pa, _ := a.OpenPort(1)
	pb, _ := b.OpenPort(1)

	type audit struct {
		delivered int
		dups      int
		reorder   int
		next      uint64
	}
	mkAudit := func(p *Port) *audit {
		au := &audit{next: 1}
		p.SetReceiveHandler(func(ev RecvEvent) {
			id := binary.LittleEndian.Uint64(ev.Data)
			switch {
			case id == au.next:
				au.next++
			case id < au.next:
				au.dups++
			default:
				au.reorder++
			}
			au.delivered++
			_ = p.ProvideReceiveBuffer(64, PriorityLow)
		})
		for i := 0; i < 128; i++ {
			if err := p.ProvideReceiveBuffer(64, PriorityLow); err != nil {
				t.Fatal(err)
			}
		}
		return au
	}
	auB := mkAudit(pb) // audits a->b traffic
	auA := mkAudit(pa) // audits b->a traffic

	const total = 400
	sendN := func(p *Port, dest NodeID, n uint64) {
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, n)
		if err := p.Send(dest, 1, PriorityLow, buf, nil); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	var na, nb uint64
	var pump func()
	pump = func() {
		if na >= total && nb >= total {
			return
		}
		if na < total {
			na++
			sendN(pa, b.ID(), na)
		}
		if nb < total {
			nb++
			sendN(pb, a.ID(), nb)
		}
		cl.After(150*Microsecond, pump)
	}
	pump()

	// Three faults: sender, receiver, then sender again, spaced well apart
	// (recovery takes ~1.8 s each).
	cl.After(10*Millisecond, func() { a.InjectHang() })
	cl.After(3*Second, func() { b.InjectHang() })
	cl.After(6*Second, func() { a.InjectHang() })

	limit := cl.Now() + 60*Second
	for (auB.delivered < total || auA.delivered < total) && cl.Now() < limit {
		cl.Run(500 * Millisecond)
	}
	// The traffic may drain before the later faults fire; play out every
	// scheduled hang and its recovery.
	if cl.Now() < 12*Second {
		cl.RunUntil(12 * Second)
	}
	if auB.delivered != total || auA.delivered != total {
		t.Fatalf("delivered a->b %d/%d, b->a %d/%d", auB.delivered, total, auA.delivered, total)
	}
	if auB.dups+auA.dups != 0 {
		t.Errorf("duplicates: %d + %d", auB.dups, auA.dups)
	}
	if auB.reorder+auA.reorder != 0 {
		t.Errorf("reorders: %d + %d", auB.reorder, auA.reorder)
	}
	if got := a.FTD().Stats().Recoveries; got != 2 {
		t.Errorf("A recoveries = %d, want 2", got)
	}
	if got := b.FTD().Stats().Recoveries; got != 1 {
		t.Errorf("B recoveries = %d, want 1", got)
	}
}

func TestSimultaneousHangBothNodes(t *testing.T) {
	// Both interfaces hang at once; both FTDs recover independently and
	// traffic resumes.
	cfg := DefaultConfig(ModeFTGM)
	cfg.Host.SendTokens = 512
	cl, a, b := twoNodesCfg(t, cfg)
	pa, _ := a.OpenPort(1)
	pb, _ := b.OpenPort(1)
	got := 0
	pb.SetReceiveHandler(func(ev RecvEvent) {
		got++
		_ = pb.ProvideReceiveBuffer(64, PriorityLow)
	})
	for i := 0; i < 32; i++ {
		if err := pb.ProvideReceiveBuffer(64, PriorityLow); err != nil {
			t.Fatal(err)
		}
	}
	const total = 50
	sent := 0
	var pump func()
	pump = func() {
		if sent >= total {
			return
		}
		sent++
		if err := pa.Send(b.ID(), 1, PriorityLow, []byte{byte(sent)}, nil); err != nil {
			t.Fatal(err)
		}
		cl.After(200*Microsecond, pump)
	}
	pump()
	cl.After(3*Millisecond, func() {
		a.InjectHang()
		b.InjectHang()
	})
	cl.Run(15 * Second)
	if got != total {
		t.Fatalf("delivered %d/%d after double hang", got, total)
	}
	if a.FTD().Stats().Recoveries != 1 || b.FTD().Stats().Recoveries != 1 {
		t.Errorf("recoveries: A=%d B=%d", a.FTD().Stats().Recoveries, b.FTD().Stats().Recoveries)
	}
}

func TestHangWithLargeMessageInFlight(t *testing.T) {
	// A multi-fragment message is mid-transfer when the sender hangs; the
	// restored send token retransmits the whole message and it reassembles
	// intact.
	cfg := DefaultConfig(ModeFTGM)
	cfg.Host.SendTokens = 64
	cl, a, b := twoNodesCfg(t, cfg)
	pa, _ := a.OpenPort(1)
	pb, _ := b.OpenPort(1)
	size := 6*4096 + 123
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i * 13)
	}
	var got []byte
	pb.SetReceiveHandler(func(ev RecvEvent) { got = append([]byte(nil), ev.Data...) })
	if err := pb.ProvideReceiveBuffer(uint32(size), PriorityLow); err != nil {
		t.Fatal(err)
	}
	if err := pa.Send(b.ID(), 1, PriorityLow, data, nil); err != nil {
		t.Fatal(err)
	}
	// Hang after ~2 fragments are on the wire (each 4 KB fragment costs
	// ~22 µs of DMA + wire).
	cl.After(50*Microsecond, func() {
		if got == nil {
			a.InjectHang()
		}
	})
	cl.Run(15 * Second)
	if got == nil {
		t.Fatal("large message never delivered")
	}
	if len(got) != size {
		t.Fatalf("delivered %d bytes, want %d", len(got), size)
	}
	for i := range got {
		if got[i] != byte(i*13) {
			t.Fatalf("payload corrupted at %d", i)
		}
	}
}

func TestEightPortsMaxOpen(t *testing.T) {
	cl, a, _ := twoNodes(t, ModeFTGM)
	var ports []*Port
	for i := 0; i < MaxPorts; i++ {
		p, err := a.OpenPort(PortID(i))
		if err != nil {
			t.Fatalf("port %d: %v", i, err)
		}
		ports = append(ports, p)
	}
	if _, err := a.OpenPort(PortID(MaxPorts)); err == nil {
		t.Error("9th port opened")
	}
	// All eight recover from a hang.
	recovered := false
	a.Recovered = func() { recovered = true }
	a.InjectHang()
	cl.Run(10 * Second)
	if !recovered {
		t.Fatal("recovery with 8 open ports did not finish")
	}
	for _, p := range ports {
		if p.Stats().Recoveries != 1 {
			t.Errorf("port %d recoveries = %d", p.ID(), p.Stats().Recoveries)
		}
	}
}

func TestSendDuringOutageIsTransparent(t *testing.T) {
	// Sends issued while the interface is down queue in the shadow store
	// and complete after recovery — the application sees ordinary callback
	// completion, never an error.
	cfg := DefaultConfig(ModeFTGM)
	cfg.Host.SendTokens = 64
	cl, a, b := twoNodesCfg(t, cfg)
	pa, _ := a.OpenPort(1)
	pb, _ := b.OpenPort(1)
	delivered := 0
	pb.SetReceiveHandler(func(ev RecvEvent) { delivered++ })
	for i := 0; i < 8; i++ {
		if err := pb.ProvideReceiveBuffer(64, PriorityLow); err != nil {
			t.Fatal(err)
		}
	}
	a.InjectHang()
	cl.Run(1 * Millisecond)
	// The interface is already dead when these sends are posted.
	statuses := make([]SendStatus, 0, 3)
	for i := 0; i < 3; i++ {
		if err := pa.Send(b.ID(), 1, PriorityLow, []byte{byte(i)}, func(s SendStatus) {
			statuses = append(statuses, s)
		}); err != nil {
			t.Fatalf("send during outage: %v", err)
		}
	}
	cl.Run(10 * Second)
	if delivered != 3 {
		t.Fatalf("delivered %d/3", delivered)
	}
	if len(statuses) != 3 {
		t.Fatalf("callbacks fired %d/3", len(statuses))
	}
	for _, s := range statuses {
		if s != SendOK {
			t.Errorf("status = %v", s)
		}
	}
}

func TestFourNodeHangOnlyAffectsVictimPaths(t *testing.T) {
	// In a 4-node cluster, node 0 hangs; traffic between nodes 1<->2 is
	// never disturbed, and traffic to/from node 0 resumes after recovery.
	cfg := DefaultConfig(ModeFTGM)
	cfg.Host.SendTokens = 512
	cl := NewCluster(cfg)
	sw := cl.AddSwitch("sw")
	var nodes []*Node
	for i := 0; i < 4; i++ {
		n := cl.AddNode(fmt.Sprintf("n%d", i))
		if err := cl.Connect(n, sw, i); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	if _, err := cl.Boot(); err != nil {
		t.Fatal(err)
	}
	ports := make([]*Port, 4)
	recv := make([]int, 4)
	for i, n := range nodes {
		i := i
		p, err := n.OpenPort(1)
		if err != nil {
			t.Fatal(err)
		}
		p.SetReceiveHandler(func(ev RecvEvent) {
			recv[i]++
			_ = p.ProvideReceiveBuffer(64, PriorityLow)
		})
		for j := 0; j < 64; j++ {
			if err := p.ProvideReceiveBuffer(64, PriorityLow); err != nil {
				t.Fatal(err)
			}
		}
		ports[i] = p
	}
	// 1->2 bystander stream and 0->3 victim stream.
	const total = 80
	var i12, i03 int
	var bystanderStalled bool
	var lastRecv12 Time
	var pump func()
	pump = func() {
		if i12 < total {
			i12++
			if err := ports[1].Send(nodes[2].ID(), 1, PriorityLow, []byte{1}, nil); err != nil {
				t.Fatal(err)
			}
		}
		if i03 < total {
			i03++
			if err := ports[0].Send(nodes[3].ID(), 1, PriorityLow, []byte{3}, nil); err != nil {
				t.Fatal(err)
			}
		}
		if i12 < total || i03 < total {
			cl.After(300*Microsecond, pump)
		}
	}
	pump()
	cl.After(5*Millisecond, func() { nodes[0].InjectHang() })
	// Watch the bystander stream for stalls during the outage window.
	var watch func()
	watch = func() {
		if cl.Now() > 2*Second {
			return
		}
		if recv[2] > 0 && cl.Now()-lastRecv12 > 200*Millisecond && recv[2] < total {
			bystanderStalled = true
		}
		cl.After(50*Millisecond, watch)
	}
	prev := 0
	var track func()
	track = func() {
		if recv[2] != prev {
			prev = recv[2]
			lastRecv12 = cl.Now()
		}
		if cl.Now() < 2*Second {
			cl.After(10*Millisecond, track)
		}
	}
	track()
	watch()
	cl.Run(15 * Second)
	if recv[2] != total {
		t.Errorf("bystander stream delivered %d/%d", recv[2], total)
	}
	if recv[3] != total {
		t.Errorf("victim stream delivered %d/%d after recovery", recv[3], total)
	}
	if bystanderStalled {
		t.Error("bystander traffic stalled during an unrelated node's recovery")
	}
}
