package gm

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"testing"

	"repro/internal/gossip"
)

// fastGossipConfig is fastRecoveryConfig with the gossip control plane and
// agent timers shrunk to match (suspicion plays out in tens of virtual
// milliseconds instead of seconds).
func fastGossipConfig(shards int) Config {
	cfg := fastRecoveryConfig(ModeFTGM, shards)
	cfg.ControlPlane = ControlPlaneGossip
	cfg.Gossip = gossip.Config{
		ProbeInterval:     2 * Millisecond,
		ProbeTimeout:      300 * Microsecond,
		IndirectProbes:    2,
		SuspicionTimeout:  20 * Millisecond,
		ConfirmQuorum:     2,
		DeadProbeInterval: 10 * Millisecond,
		MaxDeltas:         8,
		RetransmitMult:    3,
	}
	return cfg
}

// gossipViewLine renders one agent's membership view sorted by peer.
func gossipViewLine(ag *gossip.Agent) string {
	view := ag.Members()
	peers := make([]NodeID, 0, len(view))
	for id := range view {
		peers = append(peers, id)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	var b bytes.Buffer
	for _, id := range peers {
		fmt.Fprintf(&b, " %d:%s", id, view[id])
	}
	return b.String()
}

// TestGossipPlaneSurvivesMapperDeath is the headline robustness property at
// the library level: with the gossip plane, hard-killing the mapping node
// mid-run leads the survivors to expel exactly that node — by distributed
// agreement, with no coordinator — and traffic among them keeps flowing.
func TestGossipPlaneSurvivesMapperDeath(t *testing.T) {
	cfg := fastGossipConfig(0)
	cl := NewCluster(cfg)
	sw := cl.AddSwitch("sw")
	var nodes []*Node
	for i := 0; i < 4; i++ {
		n := cl.AddNode(fmt.Sprintf("n%d", i))
		if err := cl.Connect(n, sw, i); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	if _, err := cl.Boot(); err != nil {
		t.Fatal(err)
	}
	if len(cl.GossipAgents()) != 4 {
		t.Fatalf("GossipAgents() = %d agents, want 4", len(cl.GossipAgents()))
	}
	if cl.NetWatch() != nil {
		t.Fatal("central watchdog running alongside the gossip plane")
	}

	n := len(nodes)
	recv := make([]int, n)
	unreachable := make([]int, n)
	ports := make([]*Port, n)
	for i, node := range nodes {
		p, err := node.OpenPort(2)
		if err != nil {
			t.Fatal(err)
		}
		ports[i] = p
		i := i
		p.SetReceiveHandler(func(ev RecvEvent) {
			recv[i]++
			_ = p.RecycleReceiveBuffer(ev.Data, ev.Prio)
		})
		for j := 0; j < 16; j++ {
			if err := p.ProvideReceiveBuffer(256, PriorityLow); err != nil {
				t.Fatal(err)
			}
		}
	}
	payload := make([]byte, 64)
	stopAt := cl.Now() + 150*Millisecond
	for i, node := range nodes {
		i := i
		eng := node.Engine()
		peer := (i + 1) % n
		var tick func()
		tick = func() {
			if eng.Now() >= stopAt || !nodes[i].Running() {
				return
			}
			if peer == i {
				peer = (peer + 1) % n
			}
			if err := ports[i].Send(nodes[peer].ID(), 2, PriorityLow, payload, nil); err != nil {
				if errors.Is(err, ErrPeerUnreachable) {
					unreachable[i]++
				}
			}
			peer = (peer + 1) % n
			eng.After(20*Microsecond, tick)
		}
		eng.After(Duration(i+1)*Microsecond, tick)
	}

	// The mapping node dies for good: watchdog-invisible hard hang, the
	// failure class the central plane cannot repair (its repair path runs
	// on this very node).
	cl.After(30*Millisecond, func() { nodes[0].InjectHardHang() })
	cl.RunUntil(stopAt + 100*Millisecond)

	deadID := nodes[0].ID()
	for i := 1; i < n; i++ {
		ag := cl.GossipAgents()[i]
		view := ag.Members()
		if view[deadID] != gossip.StateDead {
			t.Fatalf("survivor %d sees the dead mapper as %v, want dead", i, view[deadID])
		}
		for j := 1; j < n; j++ {
			if j == i {
				continue
			}
			if s := view[nodes[j].ID()]; s != gossip.StateAlive {
				t.Fatalf("survivor %d sees live survivor %d as %v", i, j, s)
			}
		}
		if unreachable[i] == 0 {
			t.Fatalf("survivor %d: sends toward the expelled mapper never failed fast", i)
		}
	}
	// Traffic among survivors kept flowing well past the kill.
	before := recv[1] + recv[2] + recv[3]
	cl.Run(50 * Millisecond)
	cl.Shutdown(Millisecond)
	if before == 0 {
		t.Fatal("survivors delivered nothing")
	}
	// The dead node's own agent, isolated, must not have expelled anyone.
	if st := cl.GossipAgents()[0].Stats(); st.DeadDeclared != 0 {
		t.Fatalf("the dead node's agent expelled peers: %+v", st)
	}
}

// TestGossipPathSuspicionFeedsPlane: a stalled reliable stream raises
// NET_FAULT_SUSPECTED, which the gossip plane must consume as a path
// suspicion (the central watchdog is not running to take it).
func TestGossipPathSuspicionFeedsPlane(t *testing.T) {
	cfg := fastGossipConfig(0)
	// The stream detector must escalate before the probe rounds declare the
	// peer dead (expulsion fails the stalled stream terminally, and a dead
	// stream never retransmits into NET_FAULT): 3 silent rounds of 2 ms
	// beat the ~26 ms suspicion pipeline comfortably.
	cfg.MCP.RtxTimeout = 2 * Millisecond
	cl := NewCluster(cfg)
	sw := cl.AddSwitch("sw")
	var nodes []*Node
	for i := 0; i < 4; i++ {
		n := cl.AddNode(fmt.Sprintf("n%d", i))
		if err := cl.Connect(n, sw, i); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	if _, err := cl.Boot(); err != nil {
		t.Fatal(err)
	}
	p, err := nodes[1].OpenPort(2)
	if err != nil {
		t.Fatal(err)
	}
	cl.After(5*Millisecond, func() { nodes[0].InjectHardHang() })
	cl.After(6*Millisecond, func() {
		// A send into the black hole: Go-Back-N retransmits until the MCP
		// escalates NET_FAULT_SUSPECTED into the agent.
		_ = p.Send(nodes[0].ID(), 2, PriorityLow, []byte("into the void"), nil)
	})
	cl.Run(300 * Millisecond)
	cl.Shutdown(Millisecond)
	if st := cl.GossipAgents()[1].Stats(); st.PathSuspicions == 0 {
		t.Fatalf("stalled stream never fed a path suspicion into the plane: %+v", st)
	}
}

// runGossipShardTrial runs the mapper-death trial on a sharded dual-switch
// fabric and returns a byte-exact fingerprint (trace + counters + gossip
// stats + final membership views).
func runGossipShardTrial(t *testing.T, shards int, speculate bool) string {
	t.Helper()
	cfg := fastGossipConfig(shards)
	cfg.Speculate = speculate
	c := NewCluster(cfg)
	d, err := BuildDualSwitch(c, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	c.EnableTrace(&trace)
	if _, err := c.Boot(); err != nil {
		t.Fatal(err)
	}
	n := len(d.Nodes)
	cells := make([]*workCell, n)
	ports := make([]*Port, n)
	for i, node := range d.Nodes {
		p, err := node.OpenPort(2)
		if err != nil {
			t.Fatal(err)
		}
		ports[i] = p
		// The workload state journals itself (workCell): with speculate the
		// node domains run ahead speculatively, and an unjournaled tick
		// cursor would survive a rollback.
		cells[i] = &workCell{eng: node.Engine(), peer: (i + 1) % n}
		w := cells[i]
		p.SetReceiveHandler(func(ev RecvEvent) {
			w.touch()
			w.recv++
			_ = p.RecycleReceiveBuffer(ev.Data, ev.Prio)
		})
		for j := 0; j < 16; j++ {
			if err := p.ProvideReceiveBuffer(256, PriorityLow); err != nil {
				t.Fatal(err)
			}
		}
	}
	stopAt := c.Now() + 60*Millisecond
	payload := make([]byte, 128)
	for i, node := range d.Nodes {
		i := i
		eng := node.Engine()
		w := cells[i]
		var tick func()
		tick = func() {
			if eng.Now() >= stopAt || !d.Nodes[i].Running() {
				return
			}
			w.touch()
			if w.peer == i {
				w.peer = (w.peer + 1) % n
			}
			if err := ports[i].Send(d.Nodes[w.peer].ID(), 2, PriorityLow, payload, nil); err != nil {
				w.rejected++
			} else {
				w.sent++
			}
			w.peer = (w.peer + 1) % n
			eng.After(10*Microsecond, tick)
		}
		eng.After(Duration(i+1)*Microsecond, tick)
	}
	// Kill the mapping node mid-run; the distributed plane must converge on
	// expelling it identically at every shard count.
	c.After(10*Millisecond, func() { d.Nodes[0].InjectHardHang() })
	c.RunUntil(stopAt + 100*Millisecond)
	c.Shutdown(Millisecond)

	deadID := d.Nodes[0].ID()
	for i := 1; i < n; i++ {
		if cl := c.GossipAgents()[i].Members(); cl[deadID] != gossip.StateDead {
			t.Fatalf("shards=%d: survivor %d never expelled the dead mapper (%v)",
				shards, i, cl[deadID])
		}
	}

	var sum bytes.Buffer
	fmt.Fprintf(&sum, "events=%d now=%d\n", c.Engine().ExecutedAll(), c.Now())
	for i, node := range d.Nodes {
		ag := c.GossipAgents()[i]
		fmt.Fprintf(&sum, "node%d sent=%d rejected=%d recv=%d mcp=%+v gossip{%s} view{%s}\n",
			i, cells[i].sent, cells[i].rejected, cells[i].recv, node.MCPStats(), ag.Stats(), gossipViewLine(ag))
	}
	return trace.String() + sum.String()
}

// TestShardInvarianceGossip: the gossip control plane — probe rounds,
// suspicion, quorum expulsion, local remap — must be bit-for-bit identical
// for every worker count, traces included. This is the plane's determinism
// contract (DESIGN.md §14).
func TestShardInvarianceGossip(t *testing.T) {
	serial := runGossipShardTrial(t, 1, false)
	if len(serial) == 0 {
		t.Fatal("empty fingerprint")
	}
	for _, shards := range []int{4, 8} {
		diffFingerprints(t, fmt.Sprintf("shards=%d", shards), serial, runGossipShardTrial(t, shards, false))
	}
	// Speculative run-ahead must not change the plane either: the node
	// domains (gossip agents included) speculate and roll back, yet the
	// fingerprint stays byte-identical to the conservative serial run.
	diffFingerprints(t, "shards=4+speculate", serial, runGossipShardTrial(t, 4, true))
}

// TestMapperConvergeTimeoutRetries is the regression test for the one-shot
// convergence failure: a cap too small for a single pass used to abort Boot
// outright; now Boot retries with a doubled budget and converges.
func TestMapperConvergeTimeoutRetries(t *testing.T) {
	cfg := DefaultConfig(ModeFTGM)
	// Stretch the mapper's rounds (>= MaxDepth full round timeouts to
	// converge) past the cap, so the first attempts must hit it before the
	// doubled budget succeeds.
	cfg.Mapper.RoundTimeout = 20 * Millisecond
	cfg.MapperConvergeTimeout = 20 * Millisecond
	cl := NewCluster(cfg)
	sw := cl.AddSwitch("sw")
	for i := 0; i < 4; i++ {
		n := cl.AddNode(fmt.Sprintf("n%d", i))
		if err := cl.Connect(n, sw, i); err != nil {
			t.Fatal(err)
		}
	}
	res, err := cl.Boot()
	if err != nil {
		t.Fatalf("Boot with a tight convergence cap: %v", err)
	}
	if len(res.IDs) != 4 {
		t.Fatalf("mapper found %d interfaces, want 4", len(res.IDs))
	}
	if cl.MapperTimeoutRetries() == 0 {
		t.Fatal("Boot never retried: the cap was not actually tight (test rotted)")
	}
	cl.Shutdown(Millisecond)
}

// TestMapperRetriesDisabled pins the opt-out: negative MapperRetries keeps
// the old one-shot behavior.
func TestMapperRetriesDisabled(t *testing.T) {
	cfg := DefaultConfig(ModeFTGM)
	cfg.Mapper.RoundTimeout = 20 * Millisecond
	cfg.MapperConvergeTimeout = 20 * Millisecond
	cfg.MapperRetries = -1
	cl := NewCluster(cfg)
	sw := cl.AddSwitch("sw")
	for i := 0; i < 4; i++ {
		n := cl.AddNode(fmt.Sprintf("n%d", i))
		if err := cl.Connect(n, sw, i); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Boot(); err == nil {
		t.Fatal("Boot succeeded with retries disabled and an impossible cap")
	}
	if cl.MapperTimeoutRetries() != 0 {
		t.Fatalf("retries counted with retrying disabled: %d", cl.MapperTimeoutRetries())
	}
	cl.Shutdown(Millisecond)
}
