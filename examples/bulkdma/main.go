// Bulkdma: GM's directed sends (zero-copy deposits into pre-registered
// remote memory) used for bulk state staging — a compute node streams
// checkpoint blocks straight into a storage node's pinned buffer, no
// receive tokens, no receiver-side events. An interface hang strikes in
// the middle of the transfer; the deposits resume transparently and the
// storage image verifies block for block.
//
//	go run ./examples/bulkdma [-blocks 64]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/gm"
)

const blockSize = 8192

func main() {
	blocks := flag.Int("blocks", 64, "checkpoint blocks to stage")
	flag.Parse()

	cfg := gm.DefaultConfig(gm.ModeFTGM)
	cfg.Host.SendTokens = 256
	cluster := gm.NewCluster(cfg)
	compute := cluster.AddNode("compute")
	storage := cluster.AddNode("storage")
	sw := cluster.AddSwitch("sw")
	must(cluster.Connect(compute, sw, 0))
	must(cluster.Connect(storage, sw, 1))
	if _, err := cluster.Boot(); err != nil {
		log.Fatal(err)
	}

	pc, err := compute.OpenPort(1)
	must(err)
	ps, err := storage.OpenPort(1)
	must(err)

	// The storage node pins one big region; its layout (one slot per
	// block) is agreed out of band, as with real GM directed sends.
	region, err := ps.RegisterMemory(uint32(*blocks) * blockSize)
	must(err)

	staged := 0
	var stage func(i int)
	stage = func(i int) {
		if i >= *blocks {
			return
		}
		block := make([]byte, blockSize)
		for j := range block {
			block[j] = byte(i) ^ byte(j*7)
		}
		err := pc.DirectedSend(storage.ID(), 1, region.ID, uint32(i*blockSize), block,
			func(s gm.SendStatus) {
				if s != gm.SendOK {
					log.Fatalf("block %d failed: %v", i, s)
				}
				staged++
			})
		if err != nil {
			log.Fatalf("block %d: %v", i, err)
		}
		cluster.After(300*gm.Microsecond, func() { stage(i + 1) })
	}
	stage(0)

	// The fault: hang the compute node's interface mid-transfer.
	cluster.After(5*gm.Millisecond, func() {
		fmt.Printf("t=%v  interface hang with %d/%d blocks staged\n",
			cluster.Now(), staged, *blocks)
		compute.InjectHang()
	})
	compute.Recovered = func() {
		fmt.Printf("t=%v  recovered; staging resumes\n", cluster.Now())
	}

	for staged < *blocks && cluster.Now() < 60*gm.Second {
		cluster.Run(200 * gm.Millisecond)
	}

	// Verify the storage image.
	bad := 0
	for i := 0; i < *blocks; i++ {
		for j := 0; j < blockSize; j++ {
			if region.Buf[i*blockSize+j] != byte(i)^byte(j*7) {
				bad++
				break
			}
		}
	}
	fmt.Printf("\nstaged %d/%d blocks (%d KB), corrupt blocks: %d\n",
		staged, *blocks, staged*blockSize/1024, bad)
	if staged == *blocks && bad == 0 {
		fmt.Println("checkpoint image intact across the interface failure.")
	} else {
		fmt.Println("STAGING FAILED")
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
