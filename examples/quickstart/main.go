// Quickstart: bring up a two-node Myrinet cluster, open a GM port on each
// side, and exchange a message — the minimal use of the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/gm"
)

func main() {
	// A cluster is hosts + switches + cables, simulated in virtual time.
	// ModeFTGM arms the paper's fault tolerance; ModeGM is stock GM.
	cluster := gm.NewCluster(gm.DefaultConfig(gm.ModeFTGM))
	alice := cluster.AddNode("alice")
	bob := cluster.AddNode("bob")
	sw := cluster.AddSwitch("sw0")
	if err := cluster.Connect(alice, sw, 0); err != nil {
		log.Fatal(err)
	}
	if err := cluster.Connect(bob, sw, 1); err != nil {
		log.Fatal(err)
	}

	// Boot loads the control program into each interface card and runs the
	// GM mapper, which assigns node IDs and distributes routes.
	if _, err := cluster.Boot(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("booted: alice is node %d, bob is node %d\n", alice.ID(), bob.ID())

	// GM's programming model: open a port, provide receive buffers
	// (receive tokens), send with a callback (send tokens).
	pa, err := alice.OpenPort(2)
	if err != nil {
		log.Fatal(err)
	}
	pb, err := bob.OpenPort(2)
	if err != nil {
		log.Fatal(err)
	}

	pb.SetReceiveHandler(func(ev gm.RecvEvent) {
		fmt.Printf("bob received %q from node %d port %d at t=%v\n",
			ev.Data, ev.Src, ev.SrcPort, cluster.Now())
	})
	if err := pb.ProvideReceiveBuffer(4096, gm.PriorityLow); err != nil {
		log.Fatal(err)
	}

	sentAt := cluster.Now()
	err = pa.Send(bob.ID(), 2, gm.PriorityLow, []byte("hello, Myrinet"),
		func(status gm.SendStatus) {
			fmt.Printf("alice's send completed with %v after %v\n",
				status, cluster.Now()-sentAt)
		})
	if err != nil {
		log.Fatal(err)
	}

	// Advance virtual time until the exchange completes.
	cluster.Run(5 * gm.Millisecond)
}
