// Allreduce: the distributed-application workload the paper's introduction
// motivates — middleware like MPI "consider GM send errors to be fatal and
// exit", so one interface hang halts the whole job. This example runs a
// ring all-reduce (global sum) across several nodes on top of GM ports,
// injects a hang into one interface mid-reduction, and shows the job
// completing with the correct result on FTGM.
//
//	go run ./examples/allreduce [-nodes 4] [-rounds 6] [-inject]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"

	"repro/gm"
)

// worker is one rank of the ring all-reduce.
type worker struct {
	rank  int
	port  *gm.Port
	right gm.NodeID // next rank's node

	local   uint64 // this rank's contribution
	results []uint64

	sendFn func(hop byte, sum uint64)
}

func main() {
	nodes := flag.Int("nodes", 4, "ranks in the ring (2..8)")
	rounds := flag.Int("rounds", 6, "all-reduce iterations")
	inject := flag.Bool("inject", true, "hang one interface mid-job")
	flag.Parse()
	if *nodes < 2 || *nodes > 8 {
		log.Fatal("-nodes must be 2..8")
	}

	cfg := gm.DefaultConfig(gm.ModeFTGM)
	cfg.Host.SendTokens = 256
	cluster := gm.NewCluster(cfg)
	sw := cluster.AddSwitch("sw")
	var members []*gm.Node
	for i := 0; i < *nodes; i++ {
		n := cluster.AddNode(fmt.Sprintf("rank%d", i))
		if err := cluster.Connect(n, sw, i); err != nil {
			log.Fatal(err)
		}
		members = append(members, n)
	}
	if _, err := cluster.Boot(); err != nil {
		log.Fatal(err)
	}

	// Wire the ring: rank i sends to rank (i+1) mod n.
	workers := make([]*worker, *nodes)
	for i, n := range members {
		p, err := n.OpenPort(1)
		if err != nil {
			log.Fatal(err)
		}
		for j := 0; j < 16; j++ {
			if err := p.ProvideReceiveBuffer(64, gm.PriorityLow); err != nil {
				log.Fatal(err)
			}
		}
		workers[i] = &worker{
			rank:  i,
			port:  p,
			right: members[(i+1)%*nodes].ID(),
			local: uint64(100 + i),
		}
	}

	// Expected global sum per round.
	var expect uint64
	for _, w := range workers {
		expect += w.local
	}

	// Ring protocol: rank 0 starts a round with its own value; each rank
	// adds its contribution and forwards; after a full lap plus a
	// broadcast lap, everyone holds the sum.
	for i := range workers {
		w := workers[i]
		n := *nodes
		w.port.SetReceiveHandler(func(ev gm.RecvEvent) {
			hop := int(ev.Data[0])
			sum := binary.LittleEndian.Uint64(ev.Data[1:])
			must(w.port.ProvideReceiveBuffer(64, gm.PriorityLow))
			switch {
			case hop < n-1: // reduce lap
				w.send(byte(hop+1), sum+w.local)
			case hop == n-1: // lap complete at the starter's left neighbor
				w.results = append(w.results, sum+w.local)
				w.send(byte(hop+1), sum+w.local) // start broadcast lap
			case hop < 2*n-2: // broadcast lap
				w.results = append(w.results, sum)
				w.send(byte(hop+1), sum)
			default:
				w.results = append(w.results, sum)
			}
		})
	}
	for i := range workers {
		w := workers[i]
		w.sendFn = func(hop byte, sum uint64) {
			buf := make([]byte, 9)
			buf[0] = hop
			binary.LittleEndian.PutUint64(buf[1:], sum)
			must(w.port.Send(w.right, 1, gm.PriorityLow, buf, nil))
		}
	}

	if *inject {
		victim := members[*nodes/2]
		cluster.After(2*gm.Millisecond, func() {
			fmt.Printf("t=%v  hanging the interface of %s mid-job\n",
				cluster.Now(), victim.Name())
			victim.InjectHang()
		})
	}

	launched := 0
	var launch func()
	launch = func() {
		if launched >= *rounds {
			return
		}
		launched++
		workers[0].send(1, workers[0].local)
		cluster.After(1*gm.Millisecond, launch)
	}
	launch()

	deadline := cluster.Now() + 120*gm.Second
	for cluster.Now() < deadline {
		cluster.Run(500 * gm.Millisecond)
		doneAll := true
		for _, w := range workers {
			if len(w.results) < *rounds {
				doneAll = false
			}
		}
		if doneAll {
			break
		}
	}

	ok := true
	for _, w := range workers {
		if len(w.results) < *rounds {
			fmt.Printf("rank %d finished only %d/%d rounds\n", w.rank, len(w.results), *rounds)
			ok = false
			continue
		}
		for r, got := range w.results[:*rounds] {
			if got != expect {
				fmt.Printf("rank %d round %d: sum %d, want %d\n", w.rank, r, got, expect)
				ok = false
			}
		}
	}
	if ok {
		fmt.Printf("all %d ranks agree on the sum %d across %d rounds", *nodes, expect, *rounds)
		if *inject {
			fmt.Printf(" — despite an interface hang mid-job")
		}
		fmt.Println()
	} else {
		fmt.Println("JOB FAILED")
	}
}

// send forwards a (hop, sum) token to the right neighbor.
func (w *worker) send(hop byte, sum uint64) { w.sendFn(hop, sum) }

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
