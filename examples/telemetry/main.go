// Telemetry: a spacecraft-flavored workload in the spirit of the paper's
// NASA REE motivation, written in GM's native *polling* style (the
// gm_receive()/gm_unknown() loop of Figure 3). A sensor node streams
// telemetry frames to a recorder and expects a command uplink back; radiation
// hangs the sensor's network processor twice during the pass. The
// application's event loop never mentions faults — it just keeps passing
// events it does not understand to Unknown, and the pass completes with
// every frame recorded exactly once.
//
//	go run ./examples/telemetry [-frames 400]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"

	"repro/gm"
)

func main() {
	frames := flag.Int("frames", 400, "telemetry frames in the pass")
	flag.Parse()

	cfg := gm.DefaultConfig(gm.ModeFTGM)
	cfg.Host.SendTokens = 2048
	cluster := gm.NewCluster(cfg)
	sensor := cluster.AddNode("sensor")
	recorder := cluster.AddNode("recorder")
	sw := cluster.AddSwitch("backplane")
	must(cluster.Connect(sensor, sw, 0))
	must(cluster.Connect(recorder, sw, 1))
	if _, err := cluster.Boot(); err != nil {
		log.Fatal(err)
	}

	sp, err := sensor.OpenPort(1)
	must(err)
	rp, err := recorder.OpenPort(1)
	must(err)
	sp.EnablePolling()
	rp.EnablePolling()
	for i := 0; i < 64; i++ {
		must(sp.ProvideReceiveBuffer(64, gm.PriorityLow))
		must(rp.ProvideReceiveBuffer(128, gm.PriorityLow))
	}

	// Recorder application: a pure Figure 3 poll loop. Record frames,
	// acknowledge every 50th with a command uplink, pass everything else
	// to Unknown.
	recorded := make(map[uint64]int)
	var lastFrame uint64
	var recorderLoop func()
	recorderLoop = func() {
		for {
			ev, ok := rp.Receive()
			if !ok {
				break
			}
			switch ev.Type {
			case gm.EvReceived:
				id := binary.LittleEndian.Uint64(ev.Data)
				recorded[id]++
				lastFrame = id
				must(rp.ProvideReceiveBuffer(128, gm.PriorityLow))
				if id%50 == 0 {
					cmd := make([]byte, 8)
					binary.LittleEndian.PutUint64(cmd, id)
					must(rp.Send(sensor.ID(), 1, gm.PriorityLow, cmd, nil))
				}
			default:
				rp.UnknownEvent(ev) // gm_unknown()
			}
		}
		cluster.After(200*gm.Microsecond, recorderLoop)
	}
	recorderLoop()

	// Sensor application: emit a frame every 250 µs, note command uplinks,
	// pass the rest to Unknown — recovery happens in there without the
	// sensor code knowing.
	var uplinks []uint64
	sent := 0
	var sensorLoop func()
	sensorLoop = func() {
		for {
			ev, ok := sp.Receive()
			if !ok {
				break
			}
			switch ev.Type {
			case gm.EvReceived:
				uplinks = append(uplinks, binary.LittleEndian.Uint64(ev.Data))
				must(sp.ProvideReceiveBuffer(64, gm.PriorityLow))
			default:
				sp.UnknownEvent(ev)
			}
		}
		if sent < *frames {
			sent++
			frame := make([]byte, 32)
			binary.LittleEndian.PutUint64(frame, uint64(sent))
			must(sp.Send(recorder.ID(), 1, gm.PriorityLow, frame, nil))
		}
		cluster.After(250*gm.Microsecond, sensorLoop)
	}
	sensorLoop()

	// Two SEUs during the pass: one early, one shortly after the first
	// recovery completes.
	seus := 0
	strike := func() {
		seus++
		fmt.Printf("t=%v  *** SEU #%d: sensor network processor hung\n", cluster.Now(), seus)
		sensor.InjectHang()
	}
	cluster.After(20*gm.Millisecond, strike)
	sensor.Recovered = func() {
		fmt.Printf("t=%v  recovered (detection %v, total %v)\n", cluster.Now(),
			sensor.FTD().Timeline().DetectionTime(),
			sensor.FTD().Timeline().TotalTime())
		if seus < 2 {
			cluster.After(100*gm.Millisecond, strike)
		}
	}

	for (len(recorded) < *frames || seus < 2) && cluster.Now() < 120*gm.Second {
		cluster.Run(500 * gm.Millisecond)
	}
	cluster.Run(3 * gm.Second) // let the final recovery land

	dups := 0
	for _, n := range recorded {
		if n > 1 {
			dups++
		}
	}
	fmt.Printf("\npass complete: %d/%d frames recorded, %d duplicates, last frame %d, %d command uplinks\n",
		len(recorded), *frames, dups, lastFrame, len(uplinks))
	if len(recorded) == *frames && dups == 0 {
		fmt.Println("telemetry intact across both upsets; neither application ever saw a fault.")
	} else {
		fmt.Println("PASS DEGRADED")
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
