// Pingpong: the Figure 8 workload as an application — a repetitive
// ping-pong exchange between two hosts, reporting the half round-trip
// latency per message size for both stock GM and FTGM, so the ~1.5 µs
// fault-tolerance overhead is directly visible.
//
//	go run ./examples/pingpong [-rounds 100]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/gm"
)

func main() {
	rounds := flag.Int("rounds", 100, "ping-pong rounds per size")
	flag.Parse()

	sizes := []int{1, 16, 64, 100, 1024, 4096, 16384}
	fmt.Printf("%-10s  %14s  %14s  %10s\n", "bytes", "GM half-RTT", "FTGM half-RTT", "overhead")
	for _, size := range sizes {
		gmLat, err := measure(gm.ModeGM, size, *rounds)
		if err != nil {
			log.Fatal(err)
		}
		ftLat, err := measure(gm.ModeFTGM, size, *rounds)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d  %12.2fus  %12.2fus  %8.2fus\n",
			size, gmLat.Micros(), ftLat.Micros(), (ftLat - gmLat).Micros())
	}
}

func measure(mode gm.Mode, size, rounds int) (gm.Duration, error) {
	cluster := gm.NewCluster(gm.DefaultConfig(mode))
	a := cluster.AddNode("a")
	b := cluster.AddNode("b")
	sw := cluster.AddSwitch("sw")
	if err := cluster.Connect(a, sw, 0); err != nil {
		return 0, err
	}
	if err := cluster.Connect(b, sw, 1); err != nil {
		return 0, err
	}
	if _, err := cluster.Boot(); err != nil {
		return 0, err
	}
	pa, err := a.OpenPort(1)
	if err != nil {
		return 0, err
	}
	pb, err := b.OpenPort(1)
	if err != nil {
		return 0, err
	}

	payload := make([]byte, size)
	var totalRTT gm.Duration
	var start gm.Time
	done := 0

	// Bob echoes every ping straight back.
	pb.SetReceiveHandler(func(ev gm.RecvEvent) {
		must(pb.ProvideReceiveBuffer(uint32(size)+16, gm.PriorityLow))
		must(pb.Send(a.ID(), 1, gm.PriorityLow, payload, nil))
	})
	// Alice times each full round trip and starts the next.
	pa.SetReceiveHandler(func(ev gm.RecvEvent) {
		totalRTT += cluster.Now() - start
		done++
		if done < rounds {
			start = cluster.Now()
			must(pa.ProvideReceiveBuffer(uint32(size)+16, gm.PriorityLow))
			must(pa.Send(b.ID(), 1, gm.PriorityLow, payload, nil))
		}
	})

	must(pa.ProvideReceiveBuffer(uint32(size)+16, gm.PriorityLow))
	must(pb.ProvideReceiveBuffer(uint32(size)+16, gm.PriorityLow))
	start = cluster.Now()
	must(pa.Send(b.ID(), 1, gm.PriorityLow, payload, nil))

	for done < rounds {
		cluster.Run(10 * gm.Millisecond)
	}
	return totalRTT / gm.Duration(2*rounds), nil
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
