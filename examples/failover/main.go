// Failover: the paper's headline demonstration as an application. A sender
// streams numbered messages continuously; halfway through, its network
// processor is hung (the Table 1 failure FTGM targets). The software
// watchdog detects the hang in under a millisecond, the fault tolerance
// daemon rebuilds the interface, the library's FAULT_DETECTED handler
// restores the tokens and sequence state — and the application code below
// never learns any of it happened: every message arrives exactly once, in
// order.
//
//	go run ./examples/failover [-messages 300]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"

	"repro/gm"
)

func main() {
	messages := flag.Int("messages", 300, "messages to stream")
	flag.Parse()

	cfg := gm.DefaultConfig(gm.ModeFTGM)
	cfg.Host.SendTokens = 1024 // deep pool: tokens stay out during the outage
	cluster := gm.NewCluster(cfg)
	sender := cluster.AddNode("sender")
	receiver := cluster.AddNode("receiver")
	sw := cluster.AddSwitch("sw")
	must(cluster.Connect(sender, sw, 0))
	must(cluster.Connect(receiver, sw, 1))
	if _, err := cluster.Boot(); err != nil {
		log.Fatal(err)
	}

	ps, err := sender.OpenPort(1)
	must(err)
	pr, err := receiver.OpenPort(1)
	must(err)

	// The receiving application: audit order and exactly-once delivery.
	var delivered, dups, gaps int
	next := uint64(1)
	pr.SetReceiveHandler(func(ev gm.RecvEvent) {
		id := binary.LittleEndian.Uint64(ev.Data)
		switch {
		case id == next:
			next++
		case id < next:
			dups++
		default:
			gaps++
			next = id + 1
		}
		delivered++
		must(pr.ProvideReceiveBuffer(64, gm.PriorityLow))
	})
	for i := 0; i < 64; i++ {
		must(pr.ProvideReceiveBuffer(64, gm.PriorityLow))
	}

	// The sending application: one numbered message every 100 µs.
	sent := 0
	var pump func()
	pump = func() {
		if sent >= *messages {
			return
		}
		sent++
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, uint64(sent))
		if err := ps.Send(receiver.ID(), 1, gm.PriorityLow, buf, nil); err != nil {
			log.Fatalf("send %d: %v", sent, err)
		}
		cluster.After(100*gm.Microsecond, pump)
	}
	pump()

	// The fault: hang the sender's LANai mid-stream.
	hangAt := gm.Duration(*messages/2) * 100 * gm.Microsecond
	cluster.After(hangAt, func() {
		fmt.Printf("t=%v  !!! network processor hung (sender had posted %d messages)\n",
			cluster.Now(), sent)
		sender.InjectHang()
	})
	sender.Recovered = func() {
		tl := sender.FTD().Timeline()
		fmt.Printf("t=%v  recovery complete: detection %v, FTD %v, per-process %v\n",
			cluster.Now(), tl.DetectionTime(), tl.FTDTime(), tl.PerProcessTime())
	}

	// Run until everything has drained.
	for delivered < *messages && cluster.Now() < 60*gm.Second {
		cluster.Run(100 * gm.Millisecond)
	}

	fmt.Printf("\nsent %d, delivered %d, duplicates %d, order gaps %d\n",
		sent, delivered, dups, gaps)
	if delivered == *messages && dups == 0 && gaps == 0 {
		fmt.Println("exactly-once, in-order delivery across the interface failure — the")
		fmt.Println("application above contains no fault-handling code at all.")
	} else {
		fmt.Println("AUDIT FAILED")
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
